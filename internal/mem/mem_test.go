package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// testConfig returns a small configuration: 8 FMem pages, 32 SMem pages,
// 1 MiB pages, budget of 4 pages per 1 s tick.
func testConfig() Config {
	const mib = int64(1) << 20
	return Config{
		PageSize:           mib,
		FMemBytes:          8 * mib,
		SMemBytes:          32 * mib,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 4 * mib,
	}
}

func newTestSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(testConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	valid := testConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero page size", func(c *Config) { c.PageSize = 0 }},
		{"zero fmem", func(c *Config) { c.FMemBytes = 0 }},
		{"zero smem", func(c *Config) { c.SMemBytes = 0 }},
		{"zero fmem latency", func(c *Config) { c.FMemLatency = 0 }},
		{"smem faster than fmem", func(c *Config) { c.SMemLatency = c.FMemLatency / 2 }},
		{"zero bandwidth", func(c *Config) { c.MigrationBandwidth = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := valid
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if c.FMemBytes != 32<<30 || c.SMemBytes != 256<<30 {
		t.Errorf("DefaultConfig capacities = %d/%d, want 32 GiB / 256 GiB",
			c.FMemBytes, c.SMemBytes)
	}
}

func TestTierString(t *testing.T) {
	if TierFMem.String() != "FMem" || TierSMem.String() != "SMem" {
		t.Error("Tier.String() wrong for valid tiers")
	}
	if Tier(0).String() != "Tier(0)" {
		t.Errorf("Tier(0).String() = %q", Tier(0).String())
	}
}

func TestAddWorkloadFMemPreferred(t *testing.T) {
	s := newTestSystem(t)
	// 12 pages requested, 8 fit in FMem, 4 spill to SMem.
	id, err := s.AddWorkload(12<<20, TierFMem)
	if err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	if got := s.TotalPages(id); got != 12 {
		t.Errorf("TotalPages = %d, want 12", got)
	}
	if got := s.FMemPages(id); got != 8 {
		t.Errorf("FMemPages = %d, want 8", got)
	}
	if got := s.FMemFreePages(); got != 0 {
		t.Errorf("FMemFreePages = %d, want 0", got)
	}
	if got := s.FMemUsageRatio(id); got != 8.0/12 {
		t.Errorf("FMemUsageRatio = %g, want %g", got, 8.0/12)
	}
}

func TestAddWorkloadSMemPreferred(t *testing.T) {
	s := newTestSystem(t)
	id, err := s.AddWorkload(5<<20, TierSMem)
	if err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	if got := s.FMemPages(id); got != 0 {
		t.Errorf("FMemPages = %d, want 0", got)
	}
	if got := s.SMemFreePages(); got != 27 {
		t.Errorf("SMemFreePages = %d, want 27", got)
	}
}

func TestAddWorkloadValidation(t *testing.T) {
	s := newTestSystem(t)
	if _, err := s.AddWorkload(0, TierFMem); err == nil {
		t.Error("zero RSS accepted")
	}
	if _, err := s.AddWorkload(1<<20, Tier(0)); err == nil {
		t.Error("invalid tier accepted")
	}
	// Exceed total capacity (8 + 32 = 40 pages).
	if _, err := s.AddWorkload(41<<20, TierSMem); err == nil {
		t.Error("oversized workload accepted")
	}
}

func TestAddWorkloadRoundsUp(t *testing.T) {
	s := newTestSystem(t)
	id, err := s.AddWorkload((1<<20)+1, TierSMem)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalPages(id); got != 2 {
		t.Errorf("TotalPages = %d, want 2 (rounded up)", got)
	}
}

func TestBytesPagesConversion(t *testing.T) {
	s := newTestSystem(t)
	if got := s.BytesToPages(0); got != 0 {
		t.Errorf("BytesToPages(0) = %d, want 0", got)
	}
	if got := s.BytesToPages(-5); got != 0 {
		t.Errorf("BytesToPages(-5) = %d, want 0", got)
	}
	if got := s.PagesToBytes(3); got != 3<<20 {
		t.Errorf("PagesToBytes(3) = %d, want %d", got, 3<<20)
	}
}

func TestMigrateBasic(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(4<<20, TierSMem)
	s.BeginTick(time.Second) // 4 pages of budget
	pid := s.WorkloadPages(id)[0]
	if err := s.Migrate(pid, TierFMem); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if got := s.Page(pid).Tier; got != TierFMem {
		t.Errorf("page tier = %v, want FMem", got)
	}
	if got := s.FMemPages(id); got != 1 {
		t.Errorf("FMemPages = %d, want 1", got)
	}
	if got := s.MigratedPages(); got != 1 {
		t.Errorf("MigratedPages = %d, want 1", got)
	}
	if got := s.MigratedBytes(); got != 1<<20 {
		t.Errorf("MigratedBytes = %d, want %d", got, 1<<20)
	}
}

func TestMigrateNoOpSameTier(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(2<<20, TierSMem)
	s.BeginTick(time.Second)
	pid := s.WorkloadPages(id)[0]
	if err := s.Migrate(pid, TierSMem); err != nil {
		t.Fatalf("same-tier migrate errored: %v", err)
	}
	if got := s.MigratedPages(); got != 0 {
		t.Errorf("no-op migration consumed budget: MigratedPages = %d", got)
	}
}

func TestMigrateBandwidthExhausted(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(10<<20, TierSMem)
	s.BeginTick(time.Second) // 4 pages
	pages := s.WorkloadPages(id)
	var migrated int
	for _, pid := range pages {
		if err := s.Migrate(pid, TierFMem); err != nil {
			if !errors.Is(err, ErrBandwidthExhausted) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		migrated++
	}
	if migrated != 4 {
		t.Errorf("migrated %d pages in one tick, want 4 (bandwidth bound)", migrated)
	}
	// Budget refreshes on the next tick.
	s.BeginTick(time.Second)
	if err := s.Migrate(pages[4], TierFMem); err != nil {
		t.Errorf("migration after budget refresh failed: %v", err)
	}
}

func TestMigrateTierFull(t *testing.T) {
	s := newTestSystem(t)
	a, _ := s.AddWorkload(8<<20, TierFMem) // fills FMem
	b, _ := s.AddWorkload(2<<20, TierSMem)
	s.BeginTick(10 * time.Second)
	if err := s.Migrate(s.WorkloadPages(b)[0], TierFMem); !errors.Is(err, ErrTierFull) {
		t.Fatalf("Migrate into full tier: err = %v, want ErrTierFull", err)
	}
	// Demote one of a's pages, then the promote succeeds.
	if err := s.Migrate(s.WorkloadPages(a)[0], TierSMem); err != nil {
		t.Fatalf("demote: %v", err)
	}
	if err := s.Migrate(s.WorkloadPages(b)[0], TierFMem); err != nil {
		t.Fatalf("promote after demote: %v", err)
	}
}

func TestMigrateInvalidTier(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(1<<20, TierSMem)
	s.BeginTick(time.Second)
	if err := s.Migrate(s.WorkloadPages(id)[0], Tier(7)); err == nil {
		t.Error("invalid tier accepted")
	}
}

func TestExchange(t *testing.T) {
	s := newTestSystem(t)
	a, _ := s.AddWorkload(8<<20, TierFMem) // fills FMem
	b, _ := s.AddWorkload(8<<20, TierSMem)
	s.BeginTick(2 * time.Second) // 8 pages of budget

	demote := s.WorkloadPages(a)[:3]
	promote := s.WorkloadPages(b)[:3]
	promoted, demoted := s.Exchange(promote, demote)
	if promoted != 3 || demoted != 3 {
		t.Fatalf("Exchange = (%d promoted, %d demoted), want (3, 3)", promoted, demoted)
	}
	if got := s.FMemPages(a); got != 5 {
		t.Errorf("workload a FMemPages = %d, want 5", got)
	}
	if got := s.FMemPages(b); got != 3 {
		t.Errorf("workload b FMemPages = %d, want 3", got)
	}
}

func TestExchangeBandwidthBounded(t *testing.T) {
	s := newTestSystem(t)
	a, _ := s.AddWorkload(8<<20, TierFMem)
	b, _ := s.AddWorkload(8<<20, TierSMem)
	s.BeginTick(time.Second) // only 4 pages of budget for 8 wanted moves

	promoted, demoted := s.Exchange(s.WorkloadPages(b)[:4], s.WorkloadPages(a)[:4])
	if promoted+demoted != 4 {
		t.Errorf("Exchange moved %d pages, want 4 (budget)", promoted+demoted)
	}
}

func TestExchangePromoteOnlyIntoFreeFMem(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(8<<20, TierSMem)
	s.BeginTick(time.Second)
	promoted, demoted := s.Exchange(s.WorkloadPages(id)[:4], nil)
	if promoted != 4 || demoted != 0 {
		t.Errorf("Exchange = (%d, %d), want (4, 0)", promoted, demoted)
	}
}

func TestExchangeSkipsAlreadyPlaced(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(4<<20, TierFMem)
	s.BeginTick(time.Second)
	// Promoting already-FMem pages and demoting already-SMem pages is free.
	promoted, demoted := s.Exchange(s.WorkloadPages(id)[:2], nil)
	if promoted != 0 || demoted != 0 {
		t.Errorf("Exchange of resident pages = (%d, %d), want (0, 0)", promoted, demoted)
	}
	if s.MigratedPages() != 0 {
		t.Errorf("resident exchange consumed budget: %d pages", s.MigratedPages())
	}
}

func TestHotnessAndAging(t *testing.T) {
	s := newTestSystem(t)
	id, _ := s.AddWorkload(2<<20, TierSMem)
	pid := s.WorkloadPages(id)[0]
	s.AddHotness(pid, 9)
	if got := s.Page(pid).Hotness; got != 9 {
		t.Errorf("Hotness = %d, want 9", got)
	}
	s.AgeHotness()
	if got := s.Page(pid).Hotness; got != 4 {
		t.Errorf("aged Hotness = %d, want 4", got)
	}
	s.AgeHotness()
	s.AgeHotness()
	s.AgeHotness()
	if got := s.Page(pid).Hotness; got != 0 {
		t.Errorf("fully aged Hotness = %d, want 0", got)
	}
}

func TestMultipleWorkloadAccountingIsolated(t *testing.T) {
	s := newTestSystem(t)
	a, _ := s.AddWorkload(4<<20, TierFMem)
	b, _ := s.AddWorkload(4<<20, TierFMem)
	if s.NumWorkloads() != 2 {
		t.Fatalf("NumWorkloads = %d, want 2", s.NumWorkloads())
	}
	if s.FMemPages(a) != 4 || s.FMemPages(b) != 4 {
		t.Fatalf("FMemPages = %d/%d, want 4/4", s.FMemPages(a), s.FMemPages(b))
	}
	s.BeginTick(time.Second)
	if err := s.Migrate(s.WorkloadPages(a)[0], TierSMem); err != nil {
		t.Fatal(err)
	}
	if s.FMemPages(a) != 3 {
		t.Errorf("a FMemPages = %d, want 3", s.FMemPages(a))
	}
	if s.FMemPages(b) != 4 {
		t.Errorf("b FMemPages changed to %d on a's migration", s.FMemPages(b))
	}
}

// Property: under arbitrary migration sequences, (1) per-tier usage equals
// the sum of per-workload placements, (2) usage never exceeds capacity,
// and (3) each workload's total page count is invariant.
func TestMigrationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSystem(testConfig())
		if err != nil {
			return false
		}
		nw := 1 + rng.Intn(3)
		totals := make([]int, nw)
		for i := 0; i < nw; i++ {
			pages := 1 + rng.Intn(8)
			pref := TierFMem
			if rng.Intn(2) == 0 {
				pref = TierSMem
			}
			id, err := s.AddWorkload(int64(pages)<<20, pref)
			if err != nil {
				return false
			}
			totals[id] = pages
		}
		for tick := 0; tick < 10; tick++ {
			s.BeginTick(time.Second)
			for i := 0; i < 8; i++ {
				pid := PageID(rng.Intn(s.NumPages()))
				to := TierFMem
				if rng.Intn(2) == 0 {
					to = TierSMem
				}
				_ = s.Migrate(pid, to) // errors are legal outcomes
			}
		}
		// Invariants.
		fmemSum, totalSum := 0, 0
		for w := 0; w < nw; w++ {
			id := WorkloadID(w)
			if s.TotalPages(id) != totals[w] {
				return false
			}
			fmemSum += s.FMemPages(id)
			totalSum += s.TotalPages(id)
		}
		fmemUsed := s.FMemCapacityPages() - s.FMemFreePages()
		smemUsed := s.SMemCapacityPages() - s.SMemFreePages()
		if fmemUsed != fmemSum {
			return false
		}
		if fmemUsed+smemUsed != totalSum {
			return false
		}
		if fmemUsed > s.FMemCapacityPages() || smemUsed > s.SMemCapacityPages() {
			return false
		}
		// Per-page recount agrees with the accounts.
		recount := make([]int, nw)
		for pid := 0; pid < s.NumPages(); pid++ {
			p := s.Page(PageID(pid))
			if p.Tier == TierFMem {
				recount[p.Owner]++
			}
		}
		for w := 0; w < nw; w++ {
			if recount[w] != s.FMemPages(WorkloadID(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
