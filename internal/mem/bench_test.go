package mem

import (
	"testing"
	"time"
)

// benchSystem builds a paper-scale system with one workload in each tier.
func benchSystem(b *testing.B) (*System, WorkloadID, WorkloadID) {
	b.Helper()
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	inFMem, err := sys.AddWorkload(30<<30, TierFMem)
	if err != nil {
		b.Fatal(err)
	}
	inSMem, err := sys.AddWorkload(30<<30, TierSMem)
	if err != nil {
		b.Fatal(err)
	}
	return sys, inFMem, inSMem
}

// BenchmarkExchange measures a bandwidth-bounded page exchange: one tick's
// worth of paired promotions and demotions at paper scale.
func BenchmarkExchange(b *testing.B) {
	sys, a, c := benchSystem(b)
	demote := sys.WorkloadPages(a)[:512]
	promote := sys.WorkloadPages(c)[:512]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BeginTick(100 * time.Millisecond)
		if i%2 == 0 {
			sys.Exchange(promote, demote)
		} else {
			sys.Exchange(demote, promote) // swap back
		}
	}
}

// BenchmarkAgeHotness measures the per-interval aging sweep over ~15k
// pages.
func BenchmarkAgeHotness(b *testing.B) {
	sys, a, _ := benchSystem(b)
	for _, pid := range sys.WorkloadPages(a) {
		sys.AddHotness(pid, 1024)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.AgeHotness()
	}
}
