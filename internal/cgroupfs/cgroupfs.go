// Package cgroupfs provides an in-memory stand-in for the cgroup file
// interface through which the paper's two daemons communicate (§4): the
// kernel-space PP-E publishes per-workload memory statistics as files, and
// the user-space PP-M reads them and writes the partitioning policy back.
// Mirroring that narrow, file-shaped interface keeps the PP-M/PP-E split
// honest — neither component touches the other's internal state.
package cgroupfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/tieredmem/mtat/internal/telemetry"
)

// FS is a flat, hierarchical-path key-value store with file semantics.
// It is safe for concurrent use.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
	// gen counts writes, letting pollers detect changes cheaply.
	gen map[string]uint64

	// Interface traffic counters (nil-safe no-ops until Attach).
	reads    *telemetry.Counter
	writes   *telemetry.Counter
	notFound *telemetry.Counter
}

// Attach registers the interface-traffic counters (cgroupfs_reads_total,
// cgroupfs_writes_total, cgroupfs_notfound_total) with reg. A nil registry
// leaves the no-op counters in place.
func (fs *FS) Attach(reg *telemetry.Registry) {
	fs.reads = reg.Counter(telemetry.MetricFSReads)
	fs.writes = reg.Counter(telemetry.MetricFSWrites)
	fs.notFound = reg.Counter(telemetry.MetricFSNotFound)
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{
		files: make(map[string][]byte),
		gen:   make(map[string]uint64),
	}
}

// Clean canonicalizes a path: no leading/trailing slashes, no empty
// segments.
func Clean(path string) string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// WriteFile stores data at path, creating or replacing the file. The data
// slice is copied.
func (fs *FS) WriteFile(path string, data []byte) error {
	p := Clean(path)
	if p == "" {
		return fmt.Errorf("cgroupfs: empty path")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[p] = cp
	fs.gen[p]++
	fs.writes.Inc()
	return nil
}

// WriteString is WriteFile for string payloads.
func (fs *FS) WriteString(path, data string) error {
	return fs.WriteFile(path, []byte(data))
}

// ReadFile returns a copy of the file contents at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	p := Clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[p]
	if !ok {
		fs.notFound.Inc()
		return nil, &NotFoundError{Path: p}
	}
	fs.reads.Inc()
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// ReadString is ReadFile returning a string.
func (fs *FS) ReadString(path string) (string, error) {
	b, err := fs.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Generation returns the write generation of path (0 if absent). A change
// in generation means the file was rewritten since the last observation.
func (fs *FS) Generation(path string) uint64 {
	p := Clean(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.gen[p]
}

// Remove deletes the file at path. Removing a missing file is an error.
func (fs *FS) Remove(path string) error {
	p := Clean(path)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; !ok {
		return &NotFoundError{Path: p}
	}
	delete(fs.files, p)
	fs.gen[p]++
	return nil
}

// List returns the sorted paths under dir (direct and nested children).
// An empty dir lists everything.
func (fs *FS) List(dir string) []string {
	d := Clean(dir)
	prefix := d
	if prefix != "" {
		prefix += "/"
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if d == "" || strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// NotFoundError reports a missing file.
type NotFoundError struct {
	Path string
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("cgroupfs: %s: no such file", e.Path)
}
