package cgroupfs

import "testing"

// FuzzPaths ensures path cleaning and file operations never panic and
// that a write under any accepted path reads back identically.
func FuzzPaths(f *testing.F) {
	f.Add("a/b/c", "data")
	f.Add("///", "")
	f.Add("mtat/0/memory.stat", "fmem_pages 1")
	f.Add("..", "x")
	f.Fuzz(func(t *testing.T, path, data string) {
		fs := New()
		if err := fs.WriteString(path, data); err != nil {
			return // rejected paths are fine
		}
		got, err := fs.ReadString(path)
		if err != nil {
			t.Fatalf("written file unreadable: %v", err)
		}
		if got != data {
			t.Fatalf("read %q, wrote %q", got, data)
		}
		if fs.Generation(path) == 0 {
			t.Fatal("written file has zero generation")
		}
		if err := fs.Remove(path); err != nil {
			t.Fatalf("remove: %v", err)
		}
	})
}
