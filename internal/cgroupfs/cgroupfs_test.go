package cgroupfs

import (
	"errors"
	"sync"
	"testing"
)

func TestClean(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"/a/b/", "a/b"},
		{"a//b", "a/b"},
		{"", ""},
		{"///", ""},
		{"a", "a"},
	}
	for _, tc := range cases {
		if got := Clean(tc.in); got != tc.want {
			t.Errorf("Clean(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/mtat/redis/memory.stat", "fmem 42"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadString("mtat/redis/memory.stat") // path variants unify
	if err != nil {
		t.Fatal(err)
	}
	if got != "fmem 42" {
		t.Errorf("read %q, want %q", got, "fmem 42")
	}
}

func TestWriteEmptyPath(t *testing.T) {
	fs := New()
	if err := fs.WriteString("///", "x"); err == nil {
		t.Error("empty path accepted")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("nope")
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
	if nf.Path != "nope" {
		t.Errorf("NotFoundError.Path = %q, want %q", nf.Path, "nope")
	}
}

func TestDataIsCopied(t *testing.T) {
	fs := New()
	data := []byte("abc")
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := fs.ReadFile("f")
	if string(got) != "abc" {
		t.Error("WriteFile aliased caller buffer")
	}
	got[0] = 'Y'
	again, _ := fs.ReadString("f")
	if again != "abc" {
		t.Error("ReadFile returned aliased internal buffer")
	}
}

func TestGeneration(t *testing.T) {
	fs := New()
	if g := fs.Generation("f"); g != 0 {
		t.Errorf("generation of missing file = %d, want 0", g)
	}
	_ = fs.WriteString("f", "1")
	g1 := fs.Generation("f")
	_ = fs.WriteString("f", "2")
	g2 := fs.Generation("f")
	if g2 <= g1 || g1 == 0 {
		t.Errorf("generations not increasing: %d then %d", g1, g2)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	_ = fs.WriteString("a/b", "x")
	if err := fs.Remove("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("a/b"); err == nil {
		t.Error("file readable after Remove")
	}
	if err := fs.Remove("a/b"); err == nil {
		t.Error("double Remove succeeded")
	}
}

func TestList(t *testing.T) {
	fs := New()
	_ = fs.WriteString("mtat/redis/stat", "1")
	_ = fs.WriteString("mtat/sssp/stat", "2")
	_ = fs.WriteString("other/x", "3")
	got := fs.List("mtat")
	want := []string{"mtat/redis/stat", "mtat/sssp/stat"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("List[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if all := fs.List(""); len(all) != 3 {
		t.Errorf("List(\"\") returned %d files, want 3", len(all))
	}
	// Prefix must be segment-aligned: "mt" matches nothing.
	if got := fs.List("mt"); len(got) != 0 {
		t.Errorf("List(\"mt\") = %v, want empty", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			path := "w/" + string(rune('a'+n))
			for j := 0; j < 100; j++ {
				if err := fs.WriteString(path, "v"); err != nil {
					t.Error(err)
					return
				}
				if _, err := fs.ReadString(path); err != nil {
					t.Error(err)
					return
				}
				fs.List("w")
				fs.Generation(path)
			}
		}(i)
	}
	wg.Wait()
}
