package workload

import (
	"math"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/mem"
)

// newLabSystem returns a memory system matching the paper's geometry.
func newLabSystem(t *testing.T) *mem.System {
	t.Helper()
	sys, err := mem.NewSystem(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// smallSystem returns a tiny system for fast placement manipulation.
func smallSystem(t *testing.T) *mem.System {
	t.Helper()
	cfg := mem.Config{
		PageSize:           1 << 20,
		FMemBytes:          16 << 20,
		SMemBytes:          64 << 20,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 1 << 30,
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestKindString(t *testing.T) {
	if KindLC.String() != "LC" || KindBE.String() != "BE" {
		t.Error("Kind.String() wrong")
	}
	if Kind(0).String() != "Kind(0)" {
		t.Error("invalid Kind should format as Kind(0)")
	}
}

func TestDistSpecBuild(t *testing.T) {
	cases := []struct {
		name    string
		spec    DistSpec
		wantErr bool
	}{
		{"uniform", DistSpec{Kind: DistUniform}, false},
		{"zipf", DistSpec{Kind: DistZipf, Theta: 1}, false},
		{"mix", DistSpec{Kind: DistZipfScanMix, Theta: 0.5, ScanWeight: 0.3}, false},
		{"mix bad weight", DistSpec{Kind: DistZipfScanMix, Theta: 0.5, ScanWeight: 1.5}, true},
		{"unknown", DistSpec{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.build(100)
			if (err != nil) != tc.wantErr {
				t.Errorf("build err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestLCConfigValidate(t *testing.T) {
	base := RedisConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("Redis profile invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*LCConfig)
	}{
		{"no name", func(c *LCConfig) { c.Name = "" }},
		{"zero rss", func(c *LCConfig) { c.RSSBytes = 0 }},
		{"zero servers", func(c *LCConfig) { c.Servers = 0 }},
		{"zero slo", func(c *LCConfig) { c.SLOSeconds = 0 }},
		{"zero max load", func(c *LCConfig) { c.MaxLoadRPS = 0 }},
		{"zero cpu", func(c *LCConfig) { c.CPUSeconds = 0 }},
		{"zero touches", func(c *LCConfig) { c.MemTouches = 0 }},
		{"bad service var", func(c *LCConfig) { c.ServiceVar = 2 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestBEConfigValidate(t *testing.T) {
	base := SSSPConfig(4)
	if err := base.Validate(); err != nil {
		t.Fatalf("SSSP profile invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*BEConfig)
	}{
		{"no name", func(c *BEConfig) { c.Name = "" }},
		{"zero rss", func(c *BEConfig) { c.RSSBytes = 0 }},
		{"zero cores", func(c *BEConfig) { c.Cores = 0 }},
		{"zero rate", func(c *BEConfig) { c.BaseRatePerCore = 0 }},
		{"negative miss weight", func(c *BEConfig) { c.MissWeight = -1 }},
		{"zero accesses", func(c *BEConfig) { c.AccessesPerWork = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, c := range LCConfigs() {
		if err := c.Validate(); err != nil {
			t.Errorf("LC profile %s invalid: %v", c.Name, err)
		}
	}
	for _, c := range BEConfigs(4) {
		if err := c.Validate(); err != nil {
			t.Errorf("BE profile %s invalid: %v", c.Name, err)
		}
	}
}

func TestConfigByName(t *testing.T) {
	if c, ok := LCConfigByName("redis"); !ok || c.Name != "redis" {
		t.Error("LCConfigByName(redis) failed")
	}
	if _, ok := LCConfigByName("nope"); ok {
		t.Error("LCConfigByName(nope) succeeded")
	}
	if c, ok := BEConfigByName("xsbench", 2); !ok || c.Cores != 2 {
		t.Error("BEConfigByName(xsbench) failed")
	}
	if _, ok := BEConfigByName("nope", 2); ok {
		t.Error("BEConfigByName(nope) succeeded")
	}
}

func TestTable1Characteristics(t *testing.T) {
	// RSS values from Table 1, within half a page of the paper's GBs.
	want := map[string]struct {
		rssGiB  float64
		sloMS   float64
		maxKRPS float64
		servers int
	}{
		"redis":     {33.6, 20, 80, 1},
		"memcached": {31.4, 20, 1220, 8},
		"mongodb":   {33.2, 30, 125, 8},
		"silo":      {30.4, 15, 11, 1},
	}
	for _, c := range LCConfigs() {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected profile %s", c.Name)
			continue
		}
		if got := float64(c.RSSBytes) / float64(gib); math.Abs(got-w.rssGiB) > 0.01 {
			t.Errorf("%s RSS = %.2f GiB, want %.2f", c.Name, got, w.rssGiB)
		}
		if got := c.SLOSeconds * 1000; got != w.sloMS {
			t.Errorf("%s SLO = %g ms, want %g", c.Name, got, w.sloMS)
		}
		if got := c.MaxLoadRPS / 1000; got != w.maxKRPS {
			t.Errorf("%s max load = %g KRPS, want %g", c.Name, got, w.maxKRPS)
		}
		if c.Servers != w.servers {
			t.Errorf("%s servers = %d, want %d", c.Name, c.Servers, w.servers)
		}
	}
}

func TestLCCalibrationKneeNearMaxLoad(t *testing.T) {
	// For each LC profile, the analytic max stable load at full FMem
	// residency must fall within 10% of Table 1's Max Load, and the
	// SMem-only max load must fall in Figure 8's SMEM_ALL band (~0.65-0.85).
	sys := newLabSystem(t)
	for _, cfg := range LCConfigs() {
		lc, err := NewLC(sys, cfg, mem.TierSMem, 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		fullMax := lc.MaxStableLoadFrac(1, 0)
		if fullMax < 0.90 || fullMax > 1.10 {
			t.Errorf("%s max stable load at hit=1 is %.3f of Table 1 max, want 0.90-1.10",
				cfg.Name, fullMax)
		}
		smemMax := lc.MaxStableLoadFrac(0, 0)
		ratio := smemMax / fullMax
		if ratio < 0.65 || ratio > 0.85 {
			t.Errorf("%s SMem-only max = %.3f of FMem-only, want 0.65-0.85 (Fig. 8 band)",
				cfg.Name, ratio)
		}
	}
}

func TestLCHitRatioTracksPlacement(t *testing.T) {
	sys := smallSystem(t)
	cfg := RedisConfig()
	cfg.RSSBytes = 8 << 20 // 8 pages
	lc, err := NewLC(sys, cfg, mem.TierSMem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := lc.HitRatio(); got != 0 {
		t.Fatalf("all-SMem hit ratio = %g, want 0", got)
	}
	sys.BeginTick(time.Second)
	pages := sys.WorkloadPages(lc.ID())
	for _, pid := range pages[:4] {
		if err := sys.Migrate(pid, mem.TierFMem); err != nil {
			t.Fatal(err)
		}
	}
	if got := lc.HitRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half-resident uniform hit ratio = %g, want 0.5", got)
	}
}

func TestLCServiceDistMoments(t *testing.T) {
	sys := smallSystem(t)
	cfg := RedisConfig()
	cfg.RSSBytes = 4 << 20
	lc, _ := NewLC(sys, cfg, mem.TierSMem, 1)
	s0 := lc.ServiceDist(0, 0)
	s1 := lc.ServiceDist(1, 0)
	if s1.Mean >= s0.Mean {
		t.Errorf("service mean at hit=1 (%g) should be below hit=0 (%g)", s1.Mean, s0.Mean)
	}
	wantFast := cfg.CPUSeconds + float64(cfg.MemTouches)*73e-9
	if math.Abs(s1.Mean-wantFast)/wantFast > 1e-9 {
		t.Errorf("fast service mean = %g, want %g", s1.Mean, wantFast)
	}
	// Extra stall adds linearly.
	sStall := lc.ServiceDist(1, 5e-6)
	if math.Abs(sStall.Mean-(s1.Mean+5e-6)) > 1e-12 {
		t.Errorf("stall not added: %g vs %g", sStall.Mean, s1.Mean+5e-6)
	}
	if got := s1.CV2; math.Abs(got-0.25) > 1e-9 {
		t.Errorf("CV2 = %g, want 0.25 for ServiceVar 0.5", got)
	}
}

func TestLCTick(t *testing.T) {
	sys := smallSystem(t)
	cfg := RedisConfig()
	cfg.RSSBytes = 8 << 20
	lc, err := NewLC(sys, cfg, mem.TierFMem, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lc.Tick(0.5, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantCompleted := 0.5 * cfg.MaxLoadRPS * 0.1
	if math.Abs(res.Completed-wantCompleted)/wantCompleted > 0.01 {
		t.Errorf("Completed = %g, want ~%g", res.Completed, wantCompleted)
	}
	wantAccesses := uint64(wantCompleted * float64(cfg.MemTouches))
	if res.Accesses < wantAccesses*99/100 || res.Accesses > wantAccesses*101/100 {
		t.Errorf("Accesses = %d, want ~%d", res.Accesses, wantAccesses)
	}
	if res.HitRatio != 1 {
		t.Errorf("HitRatio = %g, want 1 (fully FMem resident)", res.HitRatio)
	}
	if _, err := lc.Tick(-1, 0.1, 0); err == nil {
		t.Error("negative load accepted")
	}
}

func TestLCOverloadViolatesSLO(t *testing.T) {
	sys := smallSystem(t)
	cfg := RedisConfig()
	cfg.RSSBytes = 8 << 20
	lc, _ := NewLC(sys, cfg, mem.TierSMem, 42) // all SMem: slower service
	// Run at 120% of (FMem-calibrated) max load for 3 simulated seconds.
	var last TickResult
	var err error
	for i := 0; i < 30; i++ {
		last, err = lc.Tick(1.2, 0.1, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.P99 < cfg.SLOSeconds {
		t.Errorf("P99 after overload = %g, want > SLO %g", last.P99, cfg.SLOSeconds)
	}
	if last.ViolationFrac < 0.5 {
		t.Errorf("ViolationFrac = %g, want > 0.5", last.ViolationFrac)
	}
	lc.ResetQueue()
	res, err := lc.Tick(0.2, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99 > cfg.SLOSeconds {
		t.Errorf("P99 after reset at low load = %g, want < SLO", res.P99)
	}
}

func TestMaxStableLoadMonotoneInHitRatio(t *testing.T) {
	sys := newLabSystem(t)
	lc, _ := NewLC(sys, RedisConfig(), mem.TierSMem, 1)
	prev := 0.0
	for _, h := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := lc.MaxStableLoadFrac(h, 0)
		if got < prev {
			t.Errorf("max stable load not monotone at hit=%g: %g < %g", h, got, prev)
		}
		prev = got
	}
	// Fault stalls reduce max load.
	noStall := lc.MaxStableLoadFrac(0.5, 0)
	withStall := lc.MaxStableLoadFrac(0.5, 20e-6)
	if withStall >= noStall {
		t.Errorf("stall did not reduce max load: %g vs %g", withStall, noStall)
	}
}

func TestBEThroughputModel(t *testing.T) {
	sys := smallSystem(t)
	cfg := SSSPConfig(4)
	cfg.RSSBytes = 8 << 20
	be, err := NewBE(sys, cfg, mem.TierSMem)
	if err != nil {
		t.Fatal(err)
	}
	full := be.PerfFull()
	want := 4 * cfg.BaseRatePerCore
	if math.Abs(full-want)/want > 1e-9 {
		t.Errorf("PerfFull = %g, want %g", full, want)
	}
	slow := be.ThroughputAt(0)
	if got := full / slow; math.Abs(got-(1+cfg.MissWeight)) > 1e-9 {
		t.Errorf("slowdown at hit=0 = %g, want %g", got, 1+cfg.MissWeight)
	}
	// Clamping.
	if be.ThroughputAt(-1) != slow || be.ThroughputAt(2) != full {
		t.Error("ThroughputAt does not clamp hit ratio")
	}
}

func TestBETickAccumulatesWork(t *testing.T) {
	sys := smallSystem(t)
	cfg := PRConfig(2)
	cfg.RSSBytes = 8 << 20
	be, _ := NewBE(sys, cfg, mem.TierSMem)
	res, err := be.Tick(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Work <= 0 || res.Throughput <= 0 || res.Accesses == 0 {
		t.Errorf("BE tick produced no progress: %+v", res)
	}
	if math.Abs(res.Work-res.Throughput*0.5) > 1e-6 {
		t.Errorf("Work (%g) != Throughput*dt (%g)", res.Work, res.Throughput*0.5)
	}
	if got := be.TotalWork(); got != res.Work {
		t.Errorf("TotalWork = %g, want %g", got, res.Work)
	}
	be.ResetWork()
	if be.TotalWork() != 0 {
		t.Error("ResetWork did not clear")
	}
	if _, err := be.Tick(0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestBEProfileThroughputMonotone(t *testing.T) {
	sys := newLabSystem(t)
	for _, cfg := range BEConfigs(4) {
		be, err := NewBE(sys, cfg, mem.TierSMem)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		total := sys.TotalPages(be.ID())
		prev := -1.0
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			tp := be.ProfileThroughput(int(frac * float64(total)))
			if tp < prev {
				t.Errorf("%s profile throughput not monotone at %g", cfg.Name, frac)
			}
			prev = tp
		}
		if got := be.ProfileThroughput(total); math.Abs(got-be.PerfFull())/be.PerfFull() > 1e-9 {
			t.Errorf("%s profile at full residency = %g, want PerfFull %g",
				cfg.Name, got, be.PerfFull())
		}
	}
}

func TestBESkewDifferentiation(t *testing.T) {
	// PR (strong Zipf) must gain far more from a small FMem share than
	// XSBench (uniform): this asymmetry drives the fairness results.
	sys := newLabSystem(t)
	pr, _ := NewBE(sys, PRConfig(4), mem.TierSMem)
	xs, _ := NewBE(sys, XSBenchConfig(4), mem.TierSMem)
	tenthPR := pr.ProfileHitRatio(sys.TotalPages(pr.ID()) / 10)
	tenthXS := xs.ProfileHitRatio(sys.TotalPages(xs.ID()) / 10)
	if tenthPR < 2*tenthXS {
		t.Errorf("PR hit ratio at 10%% residency (%g) should dwarf XSBench's (%g)",
			tenthPR, tenthXS)
	}
}

func TestLCDeterminism(t *testing.T) {
	run := func() float64 {
		sys := smallSystem(t)
		cfg := MemcachedConfig()
		cfg.RSSBytes = 8 << 20
		lc, _ := NewLC(sys, cfg, mem.TierFMem, 77)
		var p99 float64
		for i := 0; i < 5; i++ {
			res, err := lc.Tick(0.8, 0.1, 0)
			if err != nil {
				t.Fatal(err)
			}
			p99 = res.P99
		}
		return p99
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed LC runs differ: %g vs %g", a, b)
	}
}

func TestLCClientTimeoutDefault(t *testing.T) {
	// Default timeout is 5x SLO: under sustained overload the queue's
	// backlog delay (and so P99) must plateau near that bound instead of
	// diverging.
	sys := smallSystem(t)
	cfg := RedisConfig()
	cfg.RSSBytes = 8 << 20
	lc, _ := NewLC(sys, cfg, mem.TierSMem, 5)
	var last TickResult
	for i := 0; i < 100; i++ {
		var err error
		last, err = lc.Tick(1.5, 0.1, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	bound := 5 * cfg.SLOSeconds
	if last.P99 > bound*1.5 {
		t.Errorf("P99 = %g, want plateau near client timeout %g", last.P99, bound)
	}
	if last.Dropped == 0 {
		t.Error("sustained overload dropped nothing")
	}
	// Explicit timeout override takes effect.
	cfg2 := RedisConfig()
	cfg2.RSSBytes = 8 << 20
	cfg2.ClientTimeoutSeconds = 0.010 // tighter than the SLO
	lc2, _ := NewLC(sys, cfg2, mem.TierSMem, 5)
	var last2 TickResult
	for i := 0; i < 100; i++ {
		last2, _ = lc2.Tick(1.5, 0.1, 0)
	}
	if last2.P99 > 0.03 {
		t.Errorf("tight timeout P99 = %g, want < 30ms", last2.P99)
	}
}
