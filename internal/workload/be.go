package workload

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/mem"
)

// BEConfig describes a best-effort workload (Table 2).
type BEConfig struct {
	Name string
	// RSSBytes is the resident set size.
	RSSBytes int64
	// Cores is the number of cores assigned (§5's methodology pins each
	// BE workload to a fixed core set).
	Cores int
	// BaseRatePerCore is the work-unit throughput of one core when every
	// access hits FMem.
	BaseRatePerCore float64
	// MissWeight scales the slowdown from SMem accesses: throughput =
	// cores*rate / (1 + MissWeight*(1-hit)). A MissWeight of 1.0 means
	// running fully from SMem halves throughput.
	MissWeight float64
	// AccessesPerWork is the number of memory accesses per work unit,
	// which sets the workload's access intensity relative to others.
	AccessesPerWork float64
	// Dist is the page popularity profile.
	Dist DistSpec
}

// Validate reports whether the configuration is usable.
func (c BEConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: BE config needs a name")
	}
	if c.RSSBytes <= 0 {
		return fmt.Errorf("workload: %s RSSBytes must be > 0", c.Name)
	}
	if c.Cores <= 0 {
		return fmt.Errorf("workload: %s Cores must be > 0", c.Name)
	}
	if c.BaseRatePerCore <= 0 {
		return fmt.Errorf("workload: %s BaseRatePerCore must be > 0", c.Name)
	}
	if c.MissWeight < 0 {
		return fmt.Errorf("workload: %s MissWeight must be >= 0", c.Name)
	}
	if c.AccessesPerWork <= 0 {
		return fmt.Errorf("workload: %s AccessesPerWork must be > 0", c.Name)
	}
	return nil
}

// BE is a best-effort workload attached to a memory system.
type BE struct {
	cfg   BEConfig
	id    mem.WorkloadID
	sys   *mem.System
	dist  dist.Distribution
	probs []float64
	work  float64 // cumulative completed work units
}

// NewBE attaches a BE workload to sys with the given initial tier
// preference.
func NewBE(sys *mem.System, cfg BEConfig, preferred mem.Tier) (*BE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id, err := sys.AddWorkload(cfg.RSSBytes, preferred)
	if err != nil {
		return nil, fmt.Errorf("workload: attach %s: %w", cfg.Name, err)
	}
	numPages := sys.TotalPages(id)
	d, err := cfg.Dist.build(numPages)
	if err != nil {
		return nil, fmt.Errorf("workload: %s distribution: %w", cfg.Name, err)
	}
	return &BE{
		cfg:   cfg,
		id:    id,
		sys:   sys,
		dist:  d,
		probs: pageProbs(d, numPages),
	}, nil
}

// Config returns the workload configuration.
func (be *BE) Config() BEConfig { return be.cfg }

// ID returns the memory-system workload ID.
func (be *BE) ID() mem.WorkloadID { return be.id }

// Dist returns the access popularity distribution over pages.
func (be *BE) Dist() dist.Distribution { return be.dist }

// HitRatio returns the FMem hit probability under current placement.
func (be *BE) HitRatio() float64 { return hitRatio(be.sys, be.id, be.probs) }

// ThroughputAt returns work units/second at the given hit ratio.
func (be *BE) ThroughputAt(hit float64) float64 {
	if hit < 0 {
		hit = 0
	}
	if hit > 1 {
		hit = 1
	}
	return float64(be.cfg.Cores) * be.cfg.BaseRatePerCore / (1 + be.cfg.MissWeight*(1-hit))
}

// PerfFull returns throughput with every access hitting FMem — the
// Perf_full denominator of Eq. 3.
func (be *BE) PerfFull() float64 { return be.ThroughputAt(1) }

// ProfileHitRatio returns the hit ratio if the workload's hottest
// fmemPages pages were FMem-resident — the assumption behind offline
// profiling (§4) where a hotness-managed partition of that size holds the
// hottest pages.
func (be *BE) ProfileHitRatio(fmemPages int) float64 {
	return dist.HitRatio(be.dist, fmemPages, be.sys.TotalPages(be.id))
}

// ProfileThroughput returns the profiled throughput for a hotness-managed
// FMem partition of fmemPages pages.
func (be *BE) ProfileThroughput(fmemPages int) float64 {
	return be.ThroughputAt(be.ProfileHitRatio(fmemPages))
}

// BETickResult reports one tick of BE progress.
type BETickResult struct {
	// Work is the work units completed this tick.
	Work float64
	// Throughput is work per second this tick.
	Throughput float64
	// Accesses is the number of memory accesses performed this tick.
	Accesses uint64
	// HitRatio is the FMem hit ratio used for this tick.
	HitRatio float64
}

// Tick advances the workload by dt seconds under current page placement.
func (be *BE) Tick(dt float64) (BETickResult, error) {
	if dt <= 0 {
		return BETickResult{}, fmt.Errorf("workload: %s dt must be > 0, got %g", be.cfg.Name, dt)
	}
	hit := be.HitRatio()
	tput := be.ThroughputAt(hit)
	work := tput * dt
	be.work += work
	return BETickResult{
		Work:       work,
		Throughput: tput,
		Accesses:   uint64(work * be.cfg.AccessesPerWork),
		HitRatio:   hit,
	}, nil
}

// TotalWork returns cumulative completed work units.
func (be *BE) TotalWork() float64 { return be.work }

// ResetWork clears the cumulative work counter between experiment phases.
func (be *BE) ResetWork() { be.work = 0 }
