// Package workload models the paper's benchmarks: the four latency-critical
// services of Table 1 (Redis, Memcached, MongoDB, Silo) and the four
// best-effort applications of Table 2 (SSSP, BFS, PR, XSBench).
//
// An LC workload converts offered load plus current page placement into
// per-request service times and runs them through an M/G/c queue to obtain
// tail latency. A BE workload converts page placement into a throughput
// slowdown. Both expose their page-access popularity so the PEBS sampler
// can maintain the hotness counters every policy consumes.
package workload

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/mem"
)

// Kind distinguishes latency-critical from best-effort workloads.
type Kind int

// Workload kinds. Enums start at one so the zero value is invalid.
const (
	KindLC Kind = iota + 1
	KindBE
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLC:
		return "LC"
	case KindBE:
		return "BE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DistKind selects the page-access popularity shape of a workload.
type DistKind int

// Distribution kinds.
const (
	DistUniform DistKind = iota + 1
	DistZipf
	DistZipfScanMix // Zipf mixed with a sequential scan component
)

// DistSpec describes an access distribution to be instantiated over a
// workload's page count once the workload is attached to a memory system.
type DistSpec struct {
	Kind DistKind
	// Theta is the Zipf exponent (DistZipf, DistZipfScanMix).
	Theta float64
	// ScanWeight is the scan component's mixture weight in (0,1)
	// (DistZipfScanMix only).
	ScanWeight float64
}

// build instantiates the distribution over n items.
func (ds DistSpec) build(n int) (dist.Distribution, error) {
	switch ds.Kind {
	case DistUniform:
		return dist.NewUniform(n)
	case DistZipf:
		return dist.NewZipf(n, ds.Theta)
	case DistZipfScanMix:
		if ds.ScanWeight <= 0 || ds.ScanWeight >= 1 {
			return nil, fmt.Errorf("workload: ScanWeight must be in (0,1), got %g", ds.ScanWeight)
		}
		z, err := dist.NewZipf(n, ds.Theta)
		if err != nil {
			return nil, err
		}
		s, err := dist.NewScan(n)
		if err != nil {
			return nil, err
		}
		return dist.NewMixture(
			[]dist.Distribution{z, s},
			[]float64{1 - ds.ScanWeight, ds.ScanWeight},
		)
	default:
		return nil, fmt.Errorf("workload: unknown distribution kind %d", ds.Kind)
	}
}

// pageProbs returns, for each of the workload's pages, the probability that
// one access lands on that page, assuming items map onto pages in hotness
// rank order (page p covers item ranks [p*ipp, (p+1)*ipp)).
func pageProbs(d dist.Distribution, numPages int) []float64 {
	probs := make([]float64, numPages)
	n := d.N()
	for p := 0; p < numPages; p++ {
		lo := int(float64(p) / float64(numPages) * float64(n))
		hi := int(float64(p+1) / float64(numPages) * float64(n))
		if p == numPages-1 {
			hi = n
		}
		probs[p] = d.CDF(hi) - d.CDF(lo)
	}
	return probs
}

// hitRatio sums page probabilities over FMem-resident pages.
func hitRatio(sys *mem.System, id mem.WorkloadID, probs []float64) float64 {
	var h float64
	for i, pid := range sys.WorkloadPages(id) {
		if sys.PageInFMem(pid) {
			h += probs[i]
		}
	}
	if h > 1 {
		h = 1
	}
	return h
}
