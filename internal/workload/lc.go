package workload

import (
	"fmt"
	"math/rand"

	"github.com/tieredmem/mtat/internal/dist"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/queue"
)

// LCConfig describes a latency-critical workload (Table 1).
type LCConfig struct {
	Name string
	// RSSBytes is the resident set size.
	RSSBytes int64
	// Servers is the number of request-serving threads (the queue's c).
	Servers int
	// SLOSeconds is the P99 latency objective.
	SLOSeconds float64
	// MaxLoadRPS is the peak sustainable request rate with 100% FMem
	// (Table 1's Max Load); load patterns are fractions of this.
	MaxLoadRPS float64
	// CPUSeconds is the per-request compute time excluding memory stalls.
	CPUSeconds float64
	// MemTouches is the number of memory accesses a request performs.
	MemTouches int
	// ServiceVar is the fraction of service time that is exponentially
	// distributed (service = mean*((1-v) + v*Exp(1)), so CV² = v²).
	ServiceVar float64
	// ClientTimeoutSeconds bounds queueing delay: the load generator
	// abandons requests that would wait longer (dropped requests count
	// as SLO violations). Zero defaults to 5x the SLO.
	ClientTimeoutSeconds float64
	// Dist is the request key popularity over the dataset.
	Dist DistSpec
}

// Validate reports whether the configuration is usable.
func (c LCConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: LC config needs a name")
	}
	if c.RSSBytes <= 0 {
		return fmt.Errorf("workload: %s RSSBytes must be > 0", c.Name)
	}
	if c.Servers <= 0 {
		return fmt.Errorf("workload: %s Servers must be > 0", c.Name)
	}
	if c.SLOSeconds <= 0 {
		return fmt.Errorf("workload: %s SLOSeconds must be > 0", c.Name)
	}
	if c.MaxLoadRPS <= 0 {
		return fmt.Errorf("workload: %s MaxLoadRPS must be > 0", c.Name)
	}
	if c.CPUSeconds <= 0 {
		return fmt.Errorf("workload: %s CPUSeconds must be > 0", c.Name)
	}
	if c.MemTouches <= 0 {
		return fmt.Errorf("workload: %s MemTouches must be > 0", c.Name)
	}
	if c.ServiceVar < 0 || c.ServiceVar > 1 {
		return fmt.Errorf("workload: %s ServiceVar must be in [0,1]", c.Name)
	}
	return nil
}

// LC is a latency-critical workload attached to a memory system.
type LC struct {
	cfg   LCConfig
	id    mem.WorkloadID
	sys   *mem.System
	q     *queue.Model
	dist  dist.Distribution
	probs []float64
}

// NewLC attaches an LC workload to sys, allocating its RSS with the given
// initial tier preference.
func NewLC(sys *mem.System, cfg LCConfig, preferred mem.Tier, seed int64) (*LC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id, err := sys.AddWorkload(cfg.RSSBytes, preferred)
	if err != nil {
		return nil, fmt.Errorf("workload: attach %s: %w", cfg.Name, err)
	}
	numPages := sys.TotalPages(id)
	d, err := cfg.Dist.build(numPages)
	if err != nil {
		return nil, fmt.Errorf("workload: %s distribution: %w", cfg.Name, err)
	}
	q, err := queue.NewModel(cfg.Servers, seed)
	if err != nil {
		return nil, fmt.Errorf("workload: %s queue: %w", cfg.Name, err)
	}
	timeout := cfg.ClientTimeoutSeconds
	if timeout == 0 {
		timeout = 5 * cfg.SLOSeconds
	}
	q.SetClientTimeout(timeout)
	return &LC{
		cfg:   cfg,
		id:    id,
		sys:   sys,
		q:     q,
		dist:  d,
		probs: pageProbs(d, numPages),
	}, nil
}

// Config returns the workload configuration.
func (lc *LC) Config() LCConfig { return lc.cfg }

// ID returns the memory-system workload ID.
func (lc *LC) ID() mem.WorkloadID { return lc.id }

// Dist returns the request popularity distribution over pages.
func (lc *LC) Dist() dist.Distribution { return lc.dist }

// HitRatio returns the probability that a memory touch lands in FMem under
// the current page placement.
func (lc *LC) HitRatio() float64 { return hitRatio(lc.sys, lc.id, lc.probs) }

// ServiceDist returns the per-request service time distribution given an
// FMem hit ratio and an extra per-request stall (e.g. TPP fault handling).
func (lc *LC) ServiceDist(hit, extraStall float64) queue.ServiceDist {
	memCfg := lc.sys.Config()
	latF := memCfg.FMemLatency.Seconds()
	latS := memCfg.SMemLatency.Seconds()
	mean := lc.cfg.CPUSeconds +
		float64(lc.cfg.MemTouches)*(hit*latF+(1-hit)*latS) +
		extraStall
	v := lc.cfg.ServiceVar
	return queue.ServiceDist{
		Mean: mean,
		CV2:  v * v,
		Sample: func(rng *rand.Rand) float64 {
			return mean * ((1 - v) + v*rng.ExpFloat64())
		},
	}
}

// TickResult extends the queue result with the access count the workload
// generated, which feeds the PEBS sampler and the RL state.
type TickResult struct {
	queue.TickResult
	// Accesses is the number of memory accesses performed this tick.
	Accesses uint64
	// HitRatio is the FMem hit ratio used for this tick.
	HitRatio float64
}

// Tick advances the workload by dt seconds at loadFrac of max load, with an
// extra per-request stall folded into service time. It returns queue and
// access statistics for the tick.
func (lc *LC) Tick(loadFrac, dt, extraStall float64) (TickResult, error) {
	if loadFrac < 0 {
		return TickResult{}, fmt.Errorf("workload: %s loadFrac must be >= 0, got %g", lc.cfg.Name, loadFrac)
	}
	hit := lc.HitRatio()
	svc := lc.ServiceDist(hit, extraStall)
	rate := loadFrac * lc.cfg.MaxLoadRPS
	qr, err := lc.q.Tick(rate, dt, svc, lc.cfg.SLOSeconds)
	if err != nil {
		return TickResult{}, fmt.Errorf("workload: %s tick: %w", lc.cfg.Name, err)
	}
	return TickResult{
		TickResult: qr,
		Accesses:   uint64(qr.Completed * float64(lc.cfg.MemTouches)),
		HitRatio:   hit,
	}, nil
}

// StationaryP99 returns the analytic steady-state P99 at the given load
// fraction and hit ratio, ignoring backlog — used by knee-finding searches.
func (lc *LC) StationaryP99(loadFrac, hit, extraStall float64) float64 {
	svc := lc.ServiceDist(hit, extraStall)
	return lc.q.StationaryP99(loadFrac*lc.cfg.MaxLoadRPS, svc)
}

// MaxStableLoadFrac returns the largest load fraction (of MaxLoadRPS) whose
// steady-state P99 stays within the SLO at the given hit ratio, found by
// bisection. It returns 0 if even idle load violates.
func (lc *LC) MaxStableLoadFrac(hit, extraStall float64) float64 {
	lo, hi := 0.0, 2.0 // search beyond 1: with full FMem the knee sits near 1
	if lc.StationaryP99(lo+1e-9, hit, extraStall) > lc.cfg.SLOSeconds {
		return 0
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if lc.StationaryP99(mid, hit, extraStall) <= lc.cfg.SLOSeconds {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ResetQueue clears queue backlog between experiment phases.
func (lc *LC) ResetQueue() { lc.q.ResetBacklog() }

// Queue exposes the underlying queue model for observability (tick and
// Monte Carlo draw counters); callers must not Tick it directly.
func (lc *LC) Queue() *queue.Model { return lc.q }
