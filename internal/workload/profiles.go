package workload

// This file holds the calibrated benchmark profiles of Tables 1 and 2.
//
// Calibration notes: the simulator cannot reproduce the authors' absolute
// hardware numbers, so each LC profile is calibrated such that (a) its
// maximum SLO-compliant load with full FMem residency lands at Table 1's
// Max Load (service mean ≈ servers/MaxLoad near the queueing knee), and
// (b) its SMem-only service time yields a max load near 75% of FMem-only,
// matching Figure 8's SMEM_ALL band. Memory touches use the measured tier
// latencies (73 ns / 202 ns).
//
// BE profiles differ in access skew and FMem sensitivity: PageRank
// concentrates accesses on high-degree vertices (strong Zipf), SSSP and
// BFS are moderately skewed frontier traversals (BFS with a scan
// component), and XSBench performs uniform random cross-section lookups —
// which is exactly why hotness-driven baselines starve it, the fairness
// phenomenon of §5.3.

const gib = int64(1) << 30

// gibBytes converts a GiB quantity (possibly fractional, as in Table 1's
// RSS column) to bytes.
func gibBytes(g float64) int64 { return int64(g * float64(gib)) }

// RedisConfig returns the Redis profile: single-threaded in-memory KV
// store, 13.5M 1 KB records, YCSB-C uniform reads (Table 1: RSS 33.6 GB,
// SLO 20 ms, Max Load 80 KRPS).
func RedisConfig() LCConfig {
	return LCConfig{
		Name:       "redis",
		RSSBytes:   gibBytes(33.6),
		Servers:    1,
		SLOSeconds: 0.020,
		MaxLoadRPS: 80_000,
		CPUSeconds: 9.86e-6,
		MemTouches: 30,
		ServiceVar: 0.5,
		Dist:       DistSpec{Kind: DistUniform},
	}
}

// MemcachedConfig returns the Memcached profile: 8 threads, 7.1M items
// with 4 KB values under Mutilate (Table 1: RSS 31.4 GB, SLO 20 ms, Max
// Load 1220 KRPS).
func MemcachedConfig() LCConfig {
	return LCConfig{
		Name:       "memcached",
		RSSBytes:   gibBytes(31.4),
		Servers:    8,
		SLOSeconds: 0.020,
		MaxLoadRPS: 1_220_000,
		CPUSeconds: 5.11e-6,
		MemTouches: 18,
		ServiceVar: 0.5,
		Dist:       DistSpec{Kind: DistUniform},
	}
}

// MongoDBConfig returns the MongoDB profile: 8 threads, 23.3M 1 KB
// records, YCSB-C uniform reads (Table 1: RSS 33.2 GB, SLO 30 ms, Max Load
// 125 KRPS).
func MongoDBConfig() LCConfig {
	return LCConfig{
		Name:       "mongodb",
		RSSBytes:   gibBytes(33.2),
		Servers:    8,
		SLOSeconds: 0.030,
		MaxLoadRPS: 125_000,
		CPUSeconds: 47.9e-6,
		MemTouches: 190,
		ServiceVar: 0.5,
		Dist:       DistSpec{Kind: DistUniform},
	}
}

// SiloConfig returns the Silo profile: single-threaded in-memory OLTP on
// TPC-C with 320 warehouses under TailBench (Table 1: RSS 30.4 GB, SLO
// 15 ms, Max Load 11 KRPS). TPC-C spreads accesses nearly uniformly across
// warehouses with mild skew toward shared catalog tables.
func SiloConfig() LCConfig {
	return LCConfig{
		Name:       "silo",
		RSSBytes:   gibBytes(30.4),
		Servers:    1,
		SLOSeconds: 0.015,
		MaxLoadRPS: 11_000,
		CPUSeconds: 69.0e-6,
		MemTouches: 255,
		ServiceVar: 0.5,
		Dist:       DistSpec{Kind: DistZipf, Theta: 0.2},
	}
}

// LCConfigs returns the four Table 1 profiles in paper order.
func LCConfigs() []LCConfig {
	return []LCConfig{RedisConfig(), MemcachedConfig(), MongoDBConfig(), SiloConfig()}
}

// LCConfigByName returns the LC profile with the given name, or false.
func LCConfigByName(name string) (LCConfig, bool) {
	for _, c := range LCConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return LCConfig{}, false
}

// SSSPConfig returns the GAPBS single-source shortest paths profile
// (Table 2: RSS 35.5 GB). Frontier-driven traversal with moderate skew.
func SSSPConfig(cores int) BEConfig {
	return BEConfig{
		Name:            "sssp",
		RSSBytes:        gibBytes(35.5),
		Cores:           cores,
		BaseRatePerCore: 2.5e6,
		MissWeight:      0.9,
		AccessesPerWork: 20,
		Dist:            DistSpec{Kind: DistZipf, Theta: 0.7},
	}
}

// BFSConfig returns the GAPBS breadth-first search profile (Table 2: RSS
// 35.2 GB). Level-synchronous traversal: skewed vertex accesses mixed with
// sequential edge-list scans.
func BFSConfig(cores int) BEConfig {
	return BEConfig{
		Name:            "bfs",
		RSSBytes:        gibBytes(35.2),
		Cores:           cores,
		BaseRatePerCore: 3.0e6,
		MissWeight:      0.7,
		AccessesPerWork: 16,
		Dist:            DistSpec{Kind: DistZipfScanMix, Theta: 0.55, ScanWeight: 0.3},
	}
}

// PRConfig returns the GAPBS PageRank profile (Table 2: RSS 36.0 GB).
// Power-law vertex degrees concentrate accesses on few hot pages, so PR
// wins FMem under global hotness policies.
func PRConfig(cores int) BEConfig {
	return BEConfig{
		Name:            "pr",
		RSSBytes:        gibBytes(36.0),
		Cores:           cores,
		BaseRatePerCore: 2.0e6,
		MissWeight:      0.6,
		AccessesPerWork: 30,
		Dist:            DistSpec{Kind: DistZipf, Theta: 1.05},
	}
}

// XSBenchConfig returns the XSBench profile (Table 2: RSS 31.7 GB): Monte
// Carlo neutron transport with uniform random cross-section lookups — the
// most FMem-sensitive and least "hot-looking" BE workload.
func XSBenchConfig(cores int) BEConfig {
	return BEConfig{
		Name:            "xsbench",
		RSSBytes:        gibBytes(31.7),
		Cores:           cores,
		BaseRatePerCore: 1.5e6,
		MissWeight:      1.2,
		AccessesPerWork: 40,
		Dist:            DistSpec{Kind: DistUniform},
	}
}

// BEConfigs returns the four Table 2 profiles in paper order, each with
// the given core count.
func BEConfigs(cores int) []BEConfig {
	return []BEConfig{SSSPConfig(cores), BFSConfig(cores), PRConfig(cores), XSBenchConfig(cores)}
}

// BEConfigByName returns the BE profile with the given name, or false.
func BEConfigByName(name string, cores int) (BEConfig, bool) {
	for _, c := range BEConfigs(cores) {
		if c.Name == name {
			return c, true
		}
	}
	return BEConfig{}, false
}

// LCNames returns the valid latency-critical workload names in paper
// order — the values accepted by LCConfigByName.
func LCNames() []string {
	cfgs := LCConfigs()
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	return names
}

// BENames returns the valid best-effort workload names in paper order —
// the values accepted by BEConfigByName.
func BENames() []string {
	cfgs := BEConfigs(1)
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	return names
}
