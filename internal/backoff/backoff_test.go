package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, NoJitter: true}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayZeroValueDefaults(t *testing.T) {
	var p Policy
	// A zero Policy must behave: positive delays, jittered around the
	// default schedule, never beyond Max·(1+Jitter).
	for i := 0; i < 20; i++ {
		d := p.Delay(i)
		if d <= 0 {
			t.Fatalf("Delay(%d) = %v, want > 0", i, d)
		}
		hi := time.Duration(float64(DefaultMax) * (1 + DefaultJitter))
		if d > hi {
			t.Errorf("Delay(%d) = %v beyond jittered cap %v", i, d, hi)
		}
	}
	if d := p.Delay(0); d > time.Duration(float64(DefaultBase)*(1+DefaultJitter)) {
		t.Errorf("Delay(0) = %v beyond jittered base", d)
	}
}

func TestJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5}
	lo := 50 * time.Millisecond
	hi := 150 * time.Millisecond
	varied := false
	first := p.Delay(0)
	for i := 0; i < 200; i++ {
		d := p.Delay(0)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Error("200 jittered delays were all identical")
	}
}

func TestFullJitter(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, FullJitter: true}
	hi := 100 * time.Millisecond
	// Full jitter draws uniformly from (0, delay]: over 400 samples the
	// spread must reach well below the bounded-jitter floor of 50ms and
	// never exceed the grown delay.
	lowSeen := false
	first := p.Delay(0)
	varied := false
	for i := 0; i < 400; i++ {
		d := p.Delay(0)
		if d <= 0 || d > hi {
			t.Fatalf("full-jitter delay %v outside (0, %v]", d, hi)
		}
		if d < 40*time.Millisecond {
			lowSeen = true
		}
		if d != first {
			varied = true
		}
	}
	if !lowSeen {
		t.Error("400 full-jitter draws never went below 40ms; distribution looks bounded, not full")
	}
	if !varied {
		t.Error("400 full-jitter delays were all identical")
	}
	// NoJitter wins over FullJitter so deterministic tests stay deterministic.
	det := Policy{Base: 10 * time.Millisecond, NoJitter: true, FullJitter: true}
	if d := det.Delay(0); d != 10*time.Millisecond {
		t.Errorf("NoJitter+FullJitter Delay(0) = %v, want 10ms", d)
	}
}

func TestSleepHonoursContext(t *testing.T) {
	p := Policy{Base: time.Hour, NoJitter: true}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}

	quick := Policy{Base: time.Millisecond, NoJitter: true}
	if err := quick.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
}
