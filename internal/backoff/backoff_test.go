package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, NoJitter: true}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayZeroValueDefaults(t *testing.T) {
	var p Policy
	// A zero Policy must behave: positive delays, jittered around the
	// default schedule, never beyond Max·(1+Jitter).
	for i := 0; i < 20; i++ {
		d := p.Delay(i)
		if d <= 0 {
			t.Fatalf("Delay(%d) = %v, want > 0", i, d)
		}
		hi := time.Duration(float64(DefaultMax) * (1 + DefaultJitter))
		if d > hi {
			t.Errorf("Delay(%d) = %v beyond jittered cap %v", i, d, hi)
		}
	}
	if d := p.Delay(0); d > time.Duration(float64(DefaultBase)*(1+DefaultJitter)) {
		t.Errorf("Delay(0) = %v beyond jittered base", d)
	}
}

func TestJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5}
	lo := 50 * time.Millisecond
	hi := 150 * time.Millisecond
	varied := false
	first := p.Delay(0)
	for i := 0; i < 200; i++ {
		d := p.Delay(0)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Error("200 jittered delays were all identical")
	}
}

func TestSleepHonoursContext(t *testing.T) {
	p := Policy{Base: time.Hour, NoJitter: true}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}

	quick := Policy{Base: time.Millisecond, NoJitter: true}
	if err := quick.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
}
