// Package backoff is the repo's one implementation of exponential
// backoff with jitter. Every retry loop that paces itself against a
// remote party — mtatctl's run waiter, the fleet dispatcher's re-dispatch
// after a node failure, the fleet client's sweep waiter — shares this
// policy so retry storms stay de-synchronized fleet-wide.
package backoff

import (
	"context"
	"math/rand/v2"
	"time"
)

// Defaults applied by Policy.Delay for zero-valued fields.
const (
	DefaultBase   = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.2
)

// Policy describes an exponential backoff schedule: attempt n (0-based)
// waits Base·Factorⁿ, capped at Max, then randomized by ±Jitter·delay.
// The zero value is usable and selects the defaults above.
type Policy struct {
	// Base is the first delay (<= 0 selects DefaultBase).
	Base time.Duration
	// Max caps the grown delay before jitter (<= 0 selects DefaultMax).
	Max time.Duration
	// Factor is the per-attempt growth (<= 1 selects DefaultFactor).
	Factor float64
	// Jitter is the randomization fraction in [0, 1]: the returned delay
	// is uniform in [delay·(1-Jitter), delay·(1+Jitter)]. Negative
	// selects DefaultJitter; 0 disables jitter only when set explicitly
	// via NoJitter (the zero value selects the default, keeping zero
	// Policies safe against synchronized retries).
	Jitter float64
	// FullJitter replaces the bounded ±Jitter band with full jitter: the
	// returned delay is uniform in (0, delay]. Bounded jitter keeps many
	// clients within ±20% of the same instant, which is still a
	// synchronized storm when hundreds of tenants are rejected by the
	// same rate limiter in the same tick; full jitter spreads the whole
	// window. The fleet dispatcher turns this on.
	FullJitter bool
	// NoJitter disables randomization (for deterministic tests).
	NoJitter bool
}

// Delay returns the wait before retry attempt (0-based).
func (p Policy) Delay(attempt int) time.Duration {
	base, max, factor := p.Base, p.Max, p.Factor
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if factor <= 1 {
		factor = DefaultFactor
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	switch {
	case p.NoJitter:
	case p.FullJitter:
		d *= rand.Float64()
	default:
		jitter := p.Jitter
		if jitter < 0 || jitter == 0 {
			jitter = DefaultJitter
		}
		if jitter > 1 {
			jitter = 1
		}
		d *= 1 + jitter*(2*rand.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Sleep waits Delay(attempt) or until ctx is done, returning ctx's error
// in the latter case.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
