package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientStatus round-trips the load signal through the real API.
func TestClientStatus(t *testing.T) {
	c, m := newTestAPI(t, Config{Workers: 3, QueueCap: 7})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.QueueCap != 7 || st.ActiveRuns != 0 || st.Draining {
		t.Fatalf("idle stats = %+v", st)
	}

	sub, err := c.Submit(ctx, shortSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.RetainedResults != 1 || st.TotalRuns != 1 {
		t.Fatalf("post-run stats = %+v", st)
	}
	if g := m.cfg.Telemetry.Metrics().Gauge("server_results_retained").Value(); g != 1 {
		t.Errorf("server_results_retained = %v, want 1", g)
	}
}

// TestClient429Backpressure asserts a full queue surfaces as *APIError
// with StatusTooManyRequests and a Retry-After header on the wire.
func TestClient429Backpressure(t *testing.T) {
	c, m := newTestAPI(t, Config{Workers: 1, QueueCap: 1})
	ctx := context.Background()

	running, err := c.Submit(ctx, longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := c.Submit(ctx, longSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, longSpec(3))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit err = %v, want 429 APIError", err)
	}
	if !strings.Contains(apiErr.Message, "queue full") {
		t.Errorf("429 message %q does not explain backpressure", apiErr.Message)
	}
	for _, id := range []string{queued.ID, running.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClientConnectionRefused exercises every client verb against a
// port nobody listens on.
func TestClientConnectionRefused(t *testing.T) {
	// Bind-then-close yields a port that is almost certainly refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	probes := map[string]func() error{
		"submit": func() error { _, err := c.Submit(ctx, shortSpec(1)); return err },
		"run":    func() error { _, err := c.Run(ctx, "r000001"); return err },
		"runs":   func() error { _, err := c.Runs(ctx); return err },
		"status": func() error { _, err := c.Status(ctx); return err },
		"wait":   func() error { _, err := c.Wait(ctx, "r000001", time.Millisecond); return err },
	}
	for name, probe := range probes {
		err := probe()
		if err == nil {
			t.Fatalf("%s against dead addr succeeded", name)
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			t.Errorf("%s: connection error decoded as APIError %v", name, apiErr)
		}
	}
}

// TestClientMalformedBody asserts non-JSON and truncated bodies from a
// misbehaving server surface as errors, not silent zero values.
func TestClientMalformedBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id": "r0000`)) // truncated mid-object
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Run(ctx, "r000001"); err == nil {
		t.Error("truncated JSON body decoded without error")
	}

	// Non-JSON error body: the raw text must survive into the APIError.
	srvErr := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom: not json", http.StatusBadGateway)
	}))
	defer srvErr.Close()
	cErr := NewClient(srvErr.URL)
	_, err := cErr.Run(ctx, "r000001")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadGateway {
		t.Fatalf("err = %v, want 502 APIError", err)
	}
	if !strings.Contains(apiErr.Message, "boom") {
		t.Errorf("APIError lost the raw body: %q", apiErr.Message)
	}
}

// TestClientContextCancelMidRequest cancels the context while the
// server is deliberately stalling the response.
func TestClientContextCancelMidRequest(t *testing.T) {
	var inflight atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { _, err := c.Run(ctx, "r000001"); done <- err }()
	deadline := time.Now().Add(10 * time.Second)
	for inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-request cancel err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not return after context cancellation")
	}
}
