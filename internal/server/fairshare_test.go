package server

import (
	"context"
	"sort"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// fairShareRegistry builds a three-tenant registry: one LC tenant and
// two equal-weight BE tenants.
func fairShareRegistry(t *testing.T, tel *telemetry.Telemetry) *tenant.Registry {
	t.Helper()
	cfg := tenant.Config{Tenants: []tenant.Spec{
		{Name: "prio", Token: "tok-prio", Class: tenant.ClassLC},
		{Name: "alpha", Token: "tok-alpha", Class: tenant.ClassBE},
		{Name: "beta", Token: "tok-beta", Class: tenant.ClassBE},
	}}
	reg, err := tenant.New(&cfg, tel)
	if err != nil {
		t.Fatalf("tenant.New: %v", err)
	}
	return reg
}

// submitAs submits a spec under the named tenant's identity.
func submitAs(t *testing.T, m *Manager, reg *tenant.Registry, name string, seed int64) string {
	t.Helper()
	tn := reg.Resolve(name)
	if tn == nil {
		t.Fatalf("tenant %q not in registry", name)
	}
	st, err := m.SubmitCtx(tenant.NewContext(context.Background(), tn), shortSpec(seed))
	if err != nil {
		t.Fatalf("SubmitCtx as %s: %v", name, err)
	}
	return st.ID
}

// TestFairShareLCDominanceAndBEProgress is the end-to-end fair-share
// contract on a single worker: with a mixed backlog queued behind a
// running blocker, every LC-class run dispatches before any BE-class
// run regardless of submission order (BE runs were submitted first),
// the two equal-weight BE tenants interleave instead of draining
// FIFO-style one tenant at a time, and every BE run still completes —
// class priority must not starve best-effort work.
func TestFairShareLCDominanceAndBEProgress(t *testing.T) {
	tel := telemetry.New()
	reg := fairShareRegistry(t, tel)
	m := newTestManager(t, Config{Workers: 1, Telemetry: tel, Tenants: reg})
	defer shutdownOrFail(t, m, time.Minute)

	// Occupy the single worker so everything below queues up and the
	// dispatch order is decided by the fair queue, not arrival timing.
	blocker, err := m.Submit(longSpec(1))
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitState(t, m, blocker.ID, StateRunning)

	// BE backlog first, LC last: FIFO would run alpha's three, then
	// beta's three, then the LC runs at the very end.
	var beIDs, lcIDs []string
	for i := 0; i < 3; i++ {
		beIDs = append(beIDs, submitAs(t, m, reg, "alpha", int64(10+i)))
		beIDs = append(beIDs, submitAs(t, m, reg, "beta", int64(20+i)))
	}
	for i := 0; i < 2; i++ {
		lcIDs = append(lcIDs, submitAs(t, m, reg, "prio", int64(30+i)))
	}

	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}

	type started struct {
		tenant string
		at     time.Time
	}
	var order []started
	for _, id := range append(append([]string(nil), lcIDs...), beIDs...) {
		st := waitState(t, m, id, StateDone)
		if st.StartedAt == nil {
			t.Fatalf("run %s done without a start time", id)
		}
		order = append(order, started{tenant: st.Tenant, at: *st.StartedAt})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].at.Before(order[j].at) })

	// LC dominance: the first len(lcIDs) dispatches are the LC tenant's.
	for i := 0; i < len(lcIDs); i++ {
		if order[i].tenant != "prio" {
			t.Fatalf("dispatch %d was tenant %q, want LC tenant prio (order: %+v)",
				i, order[i].tenant, order)
		}
	}

	// BE fairness: equal-weight tenants interleave — deficit round robin
	// never lets one tenant take more than two consecutive slots when
	// both have work queued.
	streak, prev := 0, ""
	for _, o := range order[len(lcIDs):] {
		if o.tenant == prev {
			streak++
		} else {
			streak, prev = 1, o.tenant
		}
		if streak > 2 {
			t.Fatalf("tenant %q took %d consecutive BE slots; DRR should interleave (order: %+v)",
				o.tenant, streak, order)
		}
	}
	// BE progress is implied: waitState above demanded StateDone for
	// every BE run.
}

// TestFairShareMaxActiveGates verifies MaxActive holds a tenant's runs
// in the queue (not rejected) while letting other tenants pass, and
// releases them as actives finish.
func TestFairShareMaxActiveGates(t *testing.T) {
	tel := telemetry.New()
	cfg := tenant.Config{Tenants: []tenant.Spec{
		{Name: "capped", Token: "tok-c", Class: tenant.ClassBE,
			Quota: tenant.Quota{MaxActive: 1}},
		{Name: "free", Token: "tok-f", Class: tenant.ClassBE},
	}}
	reg, err := tenant.New(&cfg, tel)
	if err != nil {
		t.Fatalf("tenant.New: %v", err)
	}
	m := newTestManager(t, Config{Workers: 2, Telemetry: tel, Tenants: reg})
	defer shutdownOrFail(t, m, time.Minute)

	// Two runs for the capped tenant: only one may be active at a time,
	// so the second waits in the queue while the free tenant's run takes
	// the second worker.
	first := submitAs(t, m, reg, "capped", 1)
	second := submitAs(t, m, reg, "capped", 2)
	third := submitAs(t, m, reg, "free", 3)

	// All three must complete; the gate delays, never drops.
	for _, id := range []string{first, second, third} {
		waitState(t, m, id, StateDone)
	}
	u := reg.Resolve("capped").Usage()
	if u.Runs != 2 || u.Active != 0 || u.Queued != 0 {
		t.Fatalf("capped usage after completion = %+v, want 2 runs, 0 active, 0 queued", u)
	}
}
