package server

import (
	"time"

	"github.com/tieredmem/mtat/internal/sim"
)

// RunStatus is the JSON view of one run's lifecycle — what the API
// returns for status and list requests.
type RunStatus struct {
	ID          string      `json:"id"`
	State       State       `json:"state"`
	Spec        sim.RunSpec `json:"spec"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Error       string      `json:"error,omitempty"`
	Result      *RunResult  `json:"result,omitempty"`
	// Trace is the distributed trace the submission joined (hex trace
	// ID), "" for submissions that carried no traceparent. Feed it to
	// `mtatctl trace` to render the span tree.
	Trace string `json:"trace,omitempty"`
	// Tenant is the owning tenant's name. Empty (pre-tenant journals,
	// old clients) means the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
}

// RunResult is the JSON summary of a finished run — the aggregate slice
// of sim.Result (the full time series stay in memory, reachable through
// Manager.Result; the trace streams via the events endpoint).
type RunResult struct {
	Policy          string      `json:"policy"`
	SLOMet          bool        `json:"slo_met"`
	LCViolationRate float64     `json:"lc_violation_rate"`
	LCMaxP99        float64     `json:"lc_max_p99_s"`
	LCMeanP99       float64     `json:"lc_mean_p99_s"`
	BEFairness      float64     `json:"be_fairness"`
	BEThroughput    float64     `json:"be_throughput"`
	BEs             []BEOutcome `json:"bes,omitempty"`
	MigratedBytes   int64       `json:"migrated_bytes"`
	Ticks           int         `json:"ticks"`
	// Core is the run's simulator-core resource accounting (wall time,
	// pages moved, samples drawn, allocation and GC deltas).
	Core *sim.CoreStats `json:"core,omitempty"`
}

// Stats is the node's load signal, served at GET /api/v1/status: how
// much work is queued and running, and how full the result store is. A
// fleet scheduler reads it to place new runs; the same numbers are
// exported as telemetry gauges.
type Stats struct {
	Workers         int `json:"workers"`
	QueueDepth      int `json:"queue_depth"`
	QueueCap        int `json:"queue_cap"`
	QueuedRuns      int `json:"queued_runs"`
	ActiveRuns      int `json:"active_runs"`
	RetainedResults int `json:"retained_results"`
	MaxRuns         int `json:"max_runs"`
	TotalRuns       int `json:"total_runs"`
	// RecoveredRuns counts the runs this incarnation re-enqueued from
	// the journal at startup (queued or in flight when the previous
	// incarnation died).
	RecoveredRuns int  `json:"recovered_runs"`
	Draining      bool `json:"draining"`
	// Tenants counts configured tenants (0 in permissive mode).
	Tenants int `json:"tenants,omitempty"`
}

// BEOutcome is one best-effort workload's aggregate in a RunResult.
type BEOutcome struct {
	Name         string  `json:"name"`
	NP           float64 `json:"np"`
	Throughput   float64 `json:"throughput"`
	AvgFMemPages float64 `json:"avg_fmem_pages"`
}

// status snapshots the run under the manager's lock.
func (r *run) status() RunStatus {
	st := RunStatus{
		ID:          r.id,
		State:       r.state,
		Spec:        r.spec,
		SubmittedAt: r.submitted,
		Error:       r.errMsg,
		Trace:       traceOrEmpty(r.trace),
		Tenant:      tenantName(r.tn),
	}
	if !r.started.IsZero() {
		t := r.started
		st.StartedAt = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.FinishedAt = &t
	}
	switch {
	case r.result != nil:
		st.Result = summarize(r.result)
	case r.summary != nil:
		// Finished by a previous incarnation: serve the journaled
		// summary (the full time series did not survive the crash).
		st.Result = r.summary
	}
	return st
}

// summarize projects a sim.Result onto its JSON view.
func summarize(res *sim.Result) *RunResult {
	out := &RunResult{
		Policy:          res.Policy,
		SLOMet:          res.SLOMet,
		LCViolationRate: res.LCViolationRate,
		LCMaxP99:        res.LCMaxP99,
		LCMeanP99:       res.LCMeanP99,
		BEFairness:      res.BEFairness,
		BEThroughput:    res.BEThroughput,
		MigratedBytes:   res.MigratedBytes,
		Ticks:           res.Ticks,
		Core:            res.Core,
	}
	for _, be := range res.BEs {
		out.BEs = append(out.BEs, BEOutcome{
			Name:         be.Name,
			NP:           be.NP,
			Throughput:   be.Throughput,
			AvgFMemPages: be.AvgFMemPages,
		})
	}
	return out
}
