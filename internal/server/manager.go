// Package server turns the simulator into a long-lived, multi-tenant
// service: a run manager owning a bounded submission queue with
// backpressure, a worker pool executing scenario runs under per-run
// cancellation contexts, a run registry with lifecycle states, and a
// capped in-memory result store. Each run records into its own telemetry
// sink so metrics and traces never bleed across tenants. The HTTP API in
// api.go exposes the manager; cmd/mtatd serves it and cmd/mtatctl (via
// client.go) drives it.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// State is a run's lifecycle phase: queued → running → done | failed |
// cancelled.
type State string

// Run lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Manager sizing defaults.
const (
	DefaultQueueCap = 64
	DefaultMaxRuns  = 256
	// DefaultRunTraceCapacity bounds each run's private trace ring. The
	// telemetry default (1<<16 events) is sized for one process-wide
	// sink; a service retaining hundreds of runs wants a smaller ring.
	DefaultRunTraceCapacity = 1 << 12
)

// Config sizes the run manager.
type Config struct {
	// Workers is the worker pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueCap bounds the submission queue; submissions beyond it are
	// rejected with ErrQueueFull (<= 0 selects DefaultQueueCap).
	QueueCap int
	// MaxRuns caps retained finished runs; the oldest finished run (its
	// registry entry, result, and telemetry) is evicted beyond the cap
	// (<= 0 selects DefaultMaxRuns).
	MaxRuns int
	// RunTraceCapacity sizes each run's private trace ring (<= 0 selects
	// DefaultRunTraceCapacity).
	RunTraceCapacity int
	// DefaultEpisodes is the MTAT in-process training budget for specs
	// that omit episodes (<= 0 selects sim.DefaultPretrainEpisodes).
	DefaultEpisodes int
	// Telemetry is the daemon-level sink for the manager's own metrics
	// (submissions, completions, queue depth). Nil disables them.
	Telemetry *telemetry.Telemetry
}

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the queue is at capacity —
	// the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("server: submission queue full")
	// ErrShuttingDown rejects submissions after Shutdown began — mapped
	// to 503.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrNotFound reports an unknown run ID — mapped to 404.
	ErrNotFound = errors.New("server: run not found")
)

// run is the registry entry. All mutable fields are guarded by the
// manager's mutex; done is closed exactly once when the run reaches a
// terminal state.
type run struct {
	id        string
	spec      sim.RunSpec
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *sim.Result
	tel       *telemetry.Telemetry
	ctx       context.Context
	cancel    context.CancelFunc
	done      chan struct{}
}

// Manager owns the submission queue, the worker pool, and the run
// registry. All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	runs     map[string]*run
	order    []string // submission order, for List
	finished []string // finish order, for result-store eviction
	closed   bool
	nextID   int

	queue chan *run
	wg    sync.WaitGroup

	mSubmitted, mRejected *telemetry.Counter
	mDone, mFailed        *telemetry.Counter
	mCancelled            *telemetry.Counter
	gQueued, gRunning     *telemetry.Gauge
	gRetained             *telemetry.Gauge
}

// NewManager builds a manager and starts its worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	if cfg.RunTraceCapacity <= 0 {
		cfg.RunTraceCapacity = DefaultRunTraceCapacity
	}
	m := &Manager{
		cfg:   cfg,
		runs:  make(map[string]*run),
		queue: make(chan *run, cfg.QueueCap),
	}
	reg := cfg.Telemetry.Metrics()
	m.mSubmitted = reg.Counter("server_runs_submitted_total")
	m.mRejected = reg.Counter("server_runs_rejected_total")
	m.mDone = reg.Counter("server_runs_done_total")
	m.mFailed = reg.Counter("server_runs_failed_total")
	m.mCancelled = reg.Counter("server_runs_cancelled_total")
	m.gQueued = reg.Gauge("server_queue_depth")
	m.gRunning = reg.Gauge("server_runs_running")
	m.gRetained = reg.Gauge("server_results_retained")
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Workers returns the worker pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Stats snapshots the manager's load signal — the numbers a fleet
// scheduler weighs when placing work on this node. Served at
// GET /api/v1/status and mirrored by the server_queue_depth,
// server_runs_running, and server_results_retained gauges.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Workers:         m.cfg.Workers,
		QueueDepth:      len(m.queue),
		QueueCap:        m.cfg.QueueCap,
		RetainedResults: len(m.finished),
		MaxRuns:         m.cfg.MaxRuns,
		TotalRuns:       len(m.runs),
		Draining:        m.closed,
	}
	for _, r := range m.runs {
		switch r.state {
		case StateQueued:
			s.QueuedRuns++
		case StateRunning:
			s.ActiveRuns++
		}
	}
	return s
}

// Submit validates the spec and enqueues it, returning the queued run's
// status. It fails fast with ErrQueueFull when the queue is at capacity
// and ErrShuttingDown after Shutdown began.
func (m *Manager) Submit(spec sim.RunSpec) (RunStatus, error) {
	if err := spec.Validate(); err != nil {
		return RunStatus{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.mRejected.Inc()
		return RunStatus{}, ErrShuttingDown
	}
	m.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	r := &run{
		id:        fmt.Sprintf("r%06d", m.nextID),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		tel:       telemetry.NewWithConfig(telemetry.Config{TraceCapacity: m.cfg.RunTraceCapacity}),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- r:
	default:
		cancel()
		m.mRejected.Inc()
		return RunStatus{}, ErrQueueFull
	}
	m.runs[r.id] = r
	m.order = append(m.order, r.id)
	m.mSubmitted.Inc()
	m.gQueued.Set(float64(len(m.queue)))
	return r.status(), nil
}

// Get returns a run's status snapshot.
func (m *Manager) Get(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.status(), nil
}

// List returns every retained run in submission order.
func (m *Manager) List() []RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunStatus, 0, len(m.order))
	for _, id := range m.order {
		if r, ok := m.runs[id]; ok {
			out = append(out, r.status())
		}
	}
	return out
}

// Result returns a finished run's full simulation result (nil until the
// run is done).
func (m *Manager) Result(id string) (*sim.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.result, nil
}

// Events returns a run's private trace for streaming. The tracer is safe
// for concurrent use, so callers may read it while the run is live.
func (m *Manager) Events(id string) (*telemetry.Tracer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.tel.Tracer(), nil
}

// Cancel stops a run: a queued run is marked cancelled immediately (the
// worker will skip it), a running run's context is cancelled and the
// worker marks it once the tick loop observes the cancellation. Terminal
// runs are left untouched. The returned status reflects the
// post-cancellation view.
func (m *Manager) Cancel(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch r.state {
	case StateQueued:
		r.cancel()
		m.finishLocked(r, StateCancelled, "cancelled while queued", nil)
	case StateRunning:
		r.cancel()
	}
	return r.status(), nil
}

// WaitRun blocks until the run reaches a terminal state or ctx is done,
// then returns the final status.
func (m *Manager) WaitRun(ctx context.Context, id string) (RunStatus, error) {
	m.mu.Lock()
	r, ok := m.runs[id]
	m.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-r.done:
		return m.Get(id)
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
}

// Shutdown drains the service: it stops accepting submissions, lets
// queued and running work finish, and returns once every worker has
// exited. If ctx expires first, every outstanding run is cancelled, the
// workers are still waited for (cancellation stops runs between ticks),
// and ctx's error is returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, r := range m.runs {
			if !r.state.Terminal() {
				r.cancel()
			}
		}
		m.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// worker drains the queue until it is closed.
func (m *Manager) worker() {
	defer m.wg.Done()
	for r := range m.queue {
		m.runOne(r)
	}
}

// runOne executes a single queued run through its lifecycle.
func (m *Manager) runOne(r *run) {
	m.mu.Lock()
	if r.state != StateQueued { // cancelled while queued
		m.gQueued.Set(float64(len(m.queue)))
		m.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.started = time.Now()
	m.gQueued.Set(float64(len(m.queue)))
	m.gRunning.Set(m.gRunning.Value() + 1)
	m.mu.Unlock()

	res, err := execute(r.ctx, r.spec, r.tel, m.cfg.DefaultEpisodes)

	m.mu.Lock()
	m.gRunning.Set(m.gRunning.Value() - 1)
	switch {
	case err == nil:
		m.finishLocked(r, StateDone, "", res)
	case errors.Is(err, context.Canceled):
		m.finishLocked(r, StateCancelled, "cancelled", nil)
	default:
		m.finishLocked(r, StateFailed, err.Error(), nil)
	}
	m.mu.Unlock()
}

// finishLocked moves a run to a terminal state and evicts the oldest
// finished runs beyond the result-store cap. Callers hold m.mu.
func (m *Manager) finishLocked(r *run, st State, msg string, res *sim.Result) {
	r.state = st
	r.errMsg = msg
	r.result = res
	r.finished = time.Now()
	r.cancel() // release the context's resources in every path
	close(r.done)
	switch st {
	case StateDone:
		m.mDone.Inc()
	case StateFailed:
		m.mFailed.Inc()
	case StateCancelled:
		m.mCancelled.Inc()
	}
	m.finished = append(m.finished, r.id)
	for len(m.finished) > m.cfg.MaxRuns {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.runs, evict)
		for i, id := range m.order {
			if id == evict {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.gRetained.Set(float64(len(m.finished)))
}

// execute materializes and runs one spec: scenario build, policy
// construction (including in-process MTAT pre-training, cancellable via
// ctx), then the tick loop under the run's private telemetry sink.
func execute(ctx context.Context, spec sim.RunSpec, tel *telemetry.Telemetry, defaultEpisodes int) (*sim.Result, error) {
	scn, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	episodes := spec.Episodes
	if episodes <= 0 {
		episodes = defaultEpisodes
	}
	pol, err := sim.NewPolicy(ctx, spec.PolicyName(), scn, episodes)
	if err != nil {
		return nil, err
	}
	scn.Telemetry = tel
	return sim.RunScenarioContext(ctx, scn, pol)
}
