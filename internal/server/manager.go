// Package server turns the simulator into a long-lived, multi-tenant
// service: a run manager owning a bounded submission queue with
// backpressure, a worker pool executing scenario runs under per-run
// cancellation contexts, a run registry with lifecycle states, and a
// capped in-memory result store. Each run records into its own telemetry
// sink so metrics and traces never bleed across tenants. The HTTP API in
// api.go exposes the manager; cmd/mtatd serves it and cmd/mtatctl (via
// client.go) drives it.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/loadgen"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// State is a run's lifecycle phase: queued → running → done | failed |
// cancelled.
type State string

// Run lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Manager sizing defaults.
const (
	DefaultQueueCap = 64
	DefaultMaxRuns  = 256
	// DefaultRunTraceCapacity bounds each run's private trace ring. The
	// telemetry default (1<<16 events) is sized for one process-wide
	// sink; a service retaining hundreds of runs wants a smaller ring.
	DefaultRunTraceCapacity = 1 << 12
	// DefaultCompactEvery is the number of journal delta records between
	// snapshot compactions when persistence is enabled.
	DefaultCompactEvery = 1024
	// DefaultFlightCapacity sizes each run's flight-recorder ring (recent
	// core events retained for postmortems).
	DefaultFlightCapacity = 256
)

// Config sizes the run manager.
type Config struct {
	// Workers is the worker pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueCap bounds the submission queue; submissions beyond it are
	// rejected with ErrQueueFull (<= 0 selects DefaultQueueCap).
	QueueCap int
	// MaxRuns caps retained finished runs; the oldest finished run (its
	// registry entry, result, and telemetry) is evicted beyond the cap
	// (<= 0 selects DefaultMaxRuns).
	MaxRuns int
	// RunTraceCapacity sizes each run's private trace ring (<= 0 selects
	// DefaultRunTraceCapacity).
	RunTraceCapacity int
	// FlightCapacity sizes each run's flight-recorder ring (<= 0 selects
	// DefaultFlightCapacity).
	FlightCapacity int
	// DefaultEpisodes is the MTAT in-process training budget for specs
	// that omit episodes (<= 0 selects sim.DefaultPretrainEpisodes).
	DefaultEpisodes int
	// Telemetry is the daemon-level sink for the manager's own metrics
	// (submissions, completions, queue depth). Nil disables them.
	Telemetry *telemetry.Telemetry
	// Bus carries live run events (lifecycle, flight, stats deltas) to
	// SSE subscribers. Nil selects a default-sized bus; publishing is
	// free while nobody subscribes either way.
	Bus *telemetry.EventBus
	// StatsInterval is the mid-run stats sampling period for `run.stats`
	// events (<= 0 selects DefaultStatsInterval).
	StatsInterval time.Duration
	// DataDir enables crash-safe persistence: accepted specs, state
	// transitions, and result summaries are journaled there, and a
	// restarted manager replays the journal, re-enqueueing every run the
	// previous incarnation accepted but did not finish (at-least-once
	// execution — see DESIGN.md §10). Empty keeps all state in memory.
	DataDir string
	// CompactEvery is the number of journal delta records between
	// snapshot compactions (<= 0 selects DefaultCompactEvery).
	CompactEvery int
	// Fsync syncs the journal after every append; off, a process crash
	// loses nothing but an OS crash may drop the page-cache tail.
	Fsync bool
	// Tenants is the tenancy registry (auth, quotas, fair-share
	// classes, metering). Nil selects a permissive registry whose
	// anonymous tenant admits everything — daemons without -tenants
	// behave exactly as before.
	Tenants *tenant.Registry
	// Logf receives operational log lines (evictions, journal errors,
	// recovery summaries). Nil selects the standard library logger.
	Logf func(format string, args ...any)
}

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the queue is at capacity —
	// the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("server: submission queue full")
	// ErrShuttingDown rejects submissions after Shutdown began — mapped
	// to 503.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrNotFound reports an unknown run ID — mapped to 404.
	ErrNotFound = errors.New("server: run not found")
)

// run is the registry entry. All mutable fields are guarded by the
// manager's mutex; done is closed exactly once when the run reaches a
// terminal state.
type run struct {
	id        string
	spec      sim.RunSpec
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *sim.Result
	// summary is the journaled result of a run finished by a previous
	// incarnation — the full sim.Result and trace die with the process,
	// the summary survives it.
	summary *RunResult
	tel     *telemetry.Telemetry
	flight  *flight.Recorder
	// sc is the submit-time span context (the API request's server span
	// when the submission arrived with a traceparent); the worker parents
	// the run.execute span under it so the whole run joins the caller's
	// trace. trace alone survives journal replay.
	sc     telemetry.SpanContext
	trace  telemetry.TraceID
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// tn is the owning tenant; cost its admission-time cost estimate
	// (seconds), refunded from the tenant's pending budget on finish.
	tn   *tenant.Tenant
	cost float64
}

// tenantName renders a run's owner for statuses and journal records,
// "" for the anonymous tenant (keeping records byte-compatible with
// pre-tenant journals in the common single-tenant case).
func tenantName(t *tenant.Tenant) string {
	if t == nil || t.Name() == tenant.AnonymousName {
		return ""
	}
	return t.Name()
}

// Manager owns the submission queue, the worker pool, and the run
// registry. All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	jn      *journal.Journal // nil without a DataDir
	logf    func(format string, args ...any)
	tenants *tenant.Registry
	bus     *telemetry.EventBus

	mu        sync.Mutex
	runs      map[string]*run
	order     []string // submission order, for List
	finished  []string // finish order, for result-store eviction
	closed    bool
	nextID    int
	recovered int // runs re-enqueued by journal replay at startup

	// queue replaces the historical FIFO channel with the weighted
	// LC-over-BE deficit-round-robin fair queue; it is unbounded, with
	// admission (QueueCap plus per-tenant quotas) enforced in Submit.
	queue *tenant.FairQueue[*run]
	wg    sync.WaitGroup

	mSubmitted, mRejected *telemetry.Counter
	mDone, mFailed        *telemetry.Counter
	mCancelled, mEvicted  *telemetry.Counter
	gQueued, gRunning     *telemetry.Gauge
	gRetained             *telemetry.Gauge
}

// NewManager builds a manager and starts its worker pool. With a
// Config.DataDir it first opens the journal there, replays it, and
// re-enqueues every run the previous incarnation accepted but did not
// finish; the error reports an unreadable data dir or a replay veto.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	if cfg.RunTraceCapacity <= 0 {
		cfg.RunTraceCapacity = DefaultRunTraceCapacity
	}
	if cfg.FlightCapacity <= 0 {
		cfg.FlightCapacity = DefaultFlightCapacity
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	m := &Manager{
		cfg:     cfg,
		logf:    cfg.Logf,
		runs:    make(map[string]*run),
		tenants: cfg.Tenants,
		queue:   tenant.NewFairQueue[*run](),
		bus:     cfg.Bus,
	}
	if m.bus == nil {
		m.bus = telemetry.NewEventBus(telemetry.BusConfig{})
	}
	if m.logf == nil {
		m.logf = log.Printf
	}
	if m.tenants == nil {
		m.tenants = tenant.Permissive(cfg.Telemetry)
	}
	reg := cfg.Telemetry.Metrics()
	m.mSubmitted = reg.Counter("server_runs_submitted_total")
	m.mRejected = reg.Counter("server_runs_rejected_total")
	m.mDone = reg.Counter("server_runs_done_total")
	m.mFailed = reg.Counter("server_runs_failed_total")
	m.mCancelled = reg.Counter("server_runs_cancelled_total")
	m.mEvicted = reg.Counter("server_results_evicted_total")
	m.gQueued = reg.Gauge("server_queue_depth")
	m.gRunning = reg.Gauge("server_runs_running")
	m.gRetained = reg.Gauge("server_results_retained")

	var pending []*run
	if cfg.DataDir != "" {
		rs := newReplayState()
		jn, stats, err := journal.Open(cfg.DataDir,
			journal.Options{Fsync: cfg.Fsync, Telemetry: cfg.Telemetry}, rs.apply)
		if err != nil {
			return nil, dataDirError(err)
		}
		m.jn = jn
		pending = m.restore(rs)
		m.recovered = len(pending)
		if stats.Records > 0 || stats.Torn {
			m.logf("server: journal replay: %d records, %d runs retained, %d re-enqueued, torn=%v",
				stats.Records, len(m.runs), len(pending), stats.Torn)
		}
	}
	// The fair queue is unbounded, so the recovered backlog re-enqueues
	// even beyond the admission cap (Submit still enforces cfg.QueueCap
	// for new work). Recovered runs re-charge their tenants' accounting
	// without re-running admission — they were admitted before the crash.
	for _, r := range pending {
		r.tn.Restore(1, r.cost, false)
		m.queue.Push(r.tn, r)
	}
	m.gQueued.Set(float64(m.queue.Len()))
	m.gRetained.Set(float64(len(m.finished)))
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// newRunTelemetry builds one run's private telemetry sink.
func newRunTelemetry(cfg Config) *telemetry.Telemetry {
	return telemetry.NewWithConfig(telemetry.Config{TraceCapacity: cfg.RunTraceCapacity})
}

// newRunContext builds one run's cancellation context.
func newRunContext() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// Workers returns the worker pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Tenants returns the manager's tenancy registry (never nil).
func (m *Manager) Tenants() *tenant.Registry { return m.tenants }

// TenantsReloaded re-evaluates scheduling after a quota/config reload:
// runs gated under an old MaxActive limit may now be dispatchable.
func (m *Manager) TenantsReloaded() { m.queue.Notify() }

// Ready reports whether the node should receive traffic: construction
// already implies the journal replay finished, so readiness is "not
// draining and the admission queue below capacity". The reason string
// explains a false verdict — served verbatim by GET /readyz.
func (m *Manager) Ready() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, "draining: shutdown in progress"
	}
	if depth := m.queue.Len(); depth >= m.cfg.QueueCap {
		return false, fmt.Sprintf("queue saturated: %d/%d", depth, m.cfg.QueueCap)
	}
	return true, "ok"
}

// traceOrEmpty renders a trace ID for a journal record, "" when unset.
func traceOrEmpty(id telemetry.TraceID) string {
	if id.IsZero() {
		return ""
	}
	return id.String()
}

// Stats snapshots the manager's load signal — the numbers a fleet
// scheduler weighs when placing work on this node. Served at
// GET /api/v1/status and mirrored by the server_queue_depth,
// server_runs_running, and server_results_retained gauges.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Workers:         m.cfg.Workers,
		QueueDepth:      m.queue.Len(),
		QueueCap:        m.cfg.QueueCap,
		Tenants:         m.tenants.Count(),
		RetainedResults: len(m.finished),
		MaxRuns:         m.cfg.MaxRuns,
		TotalRuns:       len(m.runs),
		RecoveredRuns:   m.recovered,
		Draining:        m.closed,
	}
	for _, r := range m.runs {
		switch r.state {
		case StateQueued:
			s.QueuedRuns++
		case StateRunning:
			s.ActiveRuns++
		}
	}
	return s
}

// Submit validates the spec and enqueues it, returning the queued run's
// status. It fails fast with ErrQueueFull when the queue is at capacity
// and ErrShuttingDown after Shutdown began.
func (m *Manager) Submit(spec sim.RunSpec) (RunStatus, error) {
	return m.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit under a caller context: when ctx carries a span
// context (the API middleware puts the request's server span there), the
// run joins that trace — the journal append and the eventual execution
// record child spans, and the run's status reports the trace ID. When
// ctx carries an authenticated tenant (the tenant middleware puts it
// there), the run is admitted against that tenant's quotas and owned by
// it; otherwise the anonymous tenant owns it (trusted in-process
// callers and permissive daemons).
func (m *Manager) SubmitCtx(ctx context.Context, spec sim.RunSpec) (RunStatus, error) {
	if err := spec.Validate(); err != nil {
		return RunStatus{}, err
	}
	sc := telemetry.SpanContextFrom(ctx)
	tn := tenant.FromContext(ctx)
	if tn == nil {
		tn = m.tenants.Anonymous()
	}
	// Estimate the run's wall cost (spec ticks over the observed
	// simulator tick rate) before taking the manager lock.
	cost := m.tenants.Cost().EstimateRunSeconds(specTicks(spec))
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.mRejected.Inc()
		return RunStatus{}, ErrShuttingDown
	}
	// Global admission first (cheap, tenant-agnostic), then the
	// tenant's own rate/quota/cost checks, which charge its accounting
	// atomically on success.
	if m.queue.Len() >= m.cfg.QueueCap {
		m.mRejected.Inc()
		return RunStatus{}, ErrQueueFull
	}
	if err := tn.Admit(tenant.AdmitRequest{Units: 1, CostSeconds: cost}); err != nil {
		m.mRejected.Inc()
		return RunStatus{}, err
	}
	m.nextID++
	runCtx, cancel := newRunContext()
	r := &run{
		id:        fmt.Sprintf("r%06d", m.nextID),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		tel:       newRunTelemetry(m.cfg),
		flight:    flight.New(m.cfg.FlightCapacity),
		sc:        sc,
		trace:     sc.Trace,
		ctx:       runCtx,
		cancel:    cancel,
		done:      make(chan struct{}),
		tn:        tn,
		cost:      cost,
	}
	// Journal before exposing the run: once Submit returns the ID, the
	// acceptance must survive a crash. A failed append rejects the
	// submission instead of silently degrading durability.
	if m.jn != nil {
		var jspan *telemetry.ActiveSpan
		if sc.Valid() {
			_, jspan = m.cfg.Telemetry.Spans().StartSpan(ctx, "journal.append",
				telemetry.SA("run", r.id), telemetry.SA("rec", recRunSubmitted))
		}
		rec := runSubmittedRec{
			ID: r.id, Spec: r.spec, SubmittedAt: r.submitted,
			Trace: traceOrEmpty(r.trace), Tenant: tenantName(tn),
		}
		if err := m.jn.Append(recRunSubmitted, rec); err != nil {
			jspan.End(err)
			m.nextID--
			cancel()
			tn.NoteAbandoned(1, cost) // refund the admission charge
			m.mRejected.Inc()
			return RunStatus{}, fmt.Errorf("server: journal submission: %w", err)
		}
		jspan.End(nil)
	}
	r.flight.SetSink(m.flightSink(r.id, tenantName(tn)))
	m.queue.Push(tn, r)
	m.runs[r.id] = r
	m.order = append(m.order, r.id)
	m.mSubmitted.Inc()
	m.gQueued.Set(float64(m.queue.Len()))
	m.publishRunLocked(r)
	return r.status(), nil
}

// specTicks computes a spec's simulated tick count for cost estimation,
// applying the simulator defaults (0.1s tick; pattern-length duration,
// with the Figure 7 ramp as the nil-load fallback).
func specTicks(spec sim.RunSpec) float64 {
	tick := spec.TickSeconds
	if tick <= 0 {
		tick = 0.1
	}
	dur := spec.DurationSeconds
	if dur <= 0 {
		if p, err := spec.Load.Pattern(); err == nil && p != nil {
			dur = p.Duration()
		} else {
			dur = loadgen.Fig7().Duration()
		}
	}
	if dur <= 0 {
		return 0
	}
	return dur / tick
}

// Get returns a run's status snapshot.
func (m *Manager) Get(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.status(), nil
}

// List returns every retained run in submission order.
func (m *Manager) List() []RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunStatus, 0, len(m.order))
	for _, id := range m.order {
		if r, ok := m.runs[id]; ok {
			out = append(out, r.status())
		}
	}
	return out
}

// Result returns a finished run's full simulation result (nil until the
// run is done).
func (m *Manager) Result(id string) (*sim.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.result, nil
}

// Events returns a run's private trace for streaming. The tracer is safe
// for concurrent use, so callers may read it while the run is live.
func (m *Manager) Events(id string) (*telemetry.Tracer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.tel.Tracer(), nil
}

// Flight returns a run's flight recorder. The recorder is safe for
// concurrent use, so a dump can be taken while the run is live; a run
// finished by a previous incarnation returns an empty recorder (flight
// rings are not journaled).
func (m *Manager) Flight(id string) (*flight.Recorder, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.flight, nil
}

// Cancel stops a run: a queued run is marked cancelled immediately (the
// worker will skip it), a running run's context is cancelled and the
// worker marks it once the tick loop observes the cancellation. Terminal
// runs are left untouched. The returned status reflects the
// post-cancellation view.
func (m *Manager) Cancel(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch r.state {
	case StateQueued:
		r.cancel()
		m.finishLocked(r, StateCancelled, "cancelled while queued", nil)
	case StateRunning:
		r.cancel()
	}
	return r.status(), nil
}

// WaitRun blocks until the run reaches a terminal state or ctx is done,
// then returns the final status.
func (m *Manager) WaitRun(ctx context.Context, id string) (RunStatus, error) {
	m.mu.Lock()
	r, ok := m.runs[id]
	m.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-r.done:
		return m.Get(id)
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
}

// Shutdown drains the service: it stops accepting submissions, lets
// queued and running work finish, and returns once every worker has
// exited. If ctx expires first, every outstanding run is cancelled, the
// workers are still waited for (cancellation stops runs between ticks),
// and ctx's error is returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.queue.Close()
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		m.mu.Lock()
		for _, r := range m.runs {
			if !r.state.Terminal() {
				r.cancel()
			}
		}
		m.mu.Unlock()
		<-drained
		err = ctx.Err()
	}
	if m.jn != nil {
		if cerr := m.jn.Close(); cerr != nil {
			m.logf("server: journal close: %v", cerr)
		}
	}
	return err
}

// worker drains the fair queue until it is closed and empty.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		r, ok := m.queue.Pop()
		if !ok {
			return
		}
		m.runOne(r)
	}
}

// runOne executes a single queued run through its lifecycle.
func (m *Manager) runOne(r *run) {
	m.mu.Lock()
	if r.state != StateQueued { // cancelled while queued
		m.gQueued.Set(float64(m.queue.Len()))
		m.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.started = time.Now()
	r.tn.NoteStarted(1)
	r.tn.ObserveQueueWait(r.started.Sub(r.submitted).Seconds())
	m.journalLocked(recRunStarted, runStartedRec{ID: r.id, StartedAt: r.started})
	m.gQueued.Set(float64(m.queue.Len()))
	m.gRunning.Set(m.gRunning.Value() + 1)
	m.publishRunLocked(r)
	m.mu.Unlock()

	// Stream periodic stats deltas for watchers while the run executes.
	statsStop := make(chan struct{})
	go m.sampleRunStats(r, statsStop)
	defer close(statsStop)

	// When the submission carried a span context, the execution becomes a
	// child span in the submitter's trace: mtatctl submit → fleet dispatch
	// → node submit → run.execute read as one tree.
	ctx := r.ctx
	var span *telemetry.ActiveSpan
	if r.sc.Valid() {
		ctx, span = m.cfg.Telemetry.Spans().StartSpan(
			telemetry.ContextWithSpanContext(ctx, r.sc), "run.execute",
			telemetry.SA("run", r.id), telemetry.SA("policy", r.spec.PolicyName()))
	}
	res, err := execute(ctx, r.spec, r.tel, r.flight, m.cfg.DefaultEpisodes)
	span.End(err)
	// Each run records into a private sink; re-publish its core
	// accounting on the daemon sink so /metrics carries cross-run
	// sim_* aggregates, and feed the admission cost model with the
	// observed tick rate.
	if err == nil && res != nil {
		res.Core.Publish(m.cfg.Telemetry)
		if res.Core != nil {
			m.tenants.Cost().ObserveTickRate(res.Core.TicksPerSecond)
			m.tenants.Cost().ObserveCellSeconds(res.Core.WallSeconds)
		}
	}

	m.mu.Lock()
	m.gRunning.Set(m.gRunning.Value() - 1)
	switch {
	case err == nil:
		m.finishLocked(r, StateDone, "", res)
	case errors.Is(err, context.Canceled):
		m.finishLocked(r, StateCancelled, "cancelled", nil)
	default:
		m.finishLocked(r, StateFailed, err.Error(), nil)
	}
	m.mu.Unlock()
}

// finishLocked moves a run to a terminal state and evicts the oldest
// finished runs beyond the result-store cap. Callers hold m.mu.
func (m *Manager) finishLocked(r *run, st State, msg string, res *sim.Result) {
	// Retire the run from its tenant's accounting: a run that was
	// dispatched releases an active slot, one cancelled while queued
	// releases its queue slot; both refund the admission cost estimate.
	// The queue is notified so runs gated on MaxActive re-evaluate.
	switch r.state {
	case StateRunning:
		r.tn.NoteDone(1, r.cost)
	case StateQueued:
		r.tn.NoteAbandoned(1, r.cost)
	}
	m.queue.Notify()
	r.state = st
	r.errMsg = msg
	r.result = res
	r.finished = time.Now()
	r.cancel() // release the context's resources in every path
	close(r.done)
	switch st {
	case StateDone:
		m.mDone.Inc()
	case StateFailed:
		m.mFailed.Inc()
	case StateCancelled:
		m.mCancelled.Inc()
	}
	m.finished = append(m.finished, r.id)
	m.journalLocked(recRunFinished, runFinishedRec{
		ID: r.id, State: st, Error: msg, FinishedAt: r.finished,
		Result: summarizeOrNil(res), Tenant: tenantName(r.tn),
	})
	m.syncFlightDropsLocked(r)
	m.publishRunLocked(r)
	m.SyncBusMetrics()
	m.evictLocked()
	m.maybeCompactLocked()
}

// evictLocked drops the oldest finished runs beyond the result-store
// cap. Every eviction is accounted: the server_results_evicted_total
// counter and a log line record what vanished, so recovery tests can
// reconcile retained+evicted against submissions. Callers hold m.mu.
func (m *Manager) evictLocked() {
	for len(m.finished) > m.cfg.MaxRuns {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.runs, evict)
		for i, id := range m.order {
			if id == evict {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.bus.DropTopic(runTopic(evict))
		m.mEvicted.Inc()
		m.logf("server: result store full (max %d): evicted oldest finished run %s",
			m.cfg.MaxRuns, evict)
	}
	m.gRetained.Set(float64(len(m.finished)))
}

// summarizeOrNil is summarize tolerating the nil result of a failed or
// cancelled run.
func summarizeOrNil(res *sim.Result) *RunResult {
	if res == nil {
		return nil
	}
	return summarize(res)
}

// execute materializes and runs one spec: scenario build, policy
// construction (including in-process MTAT pre-training, cancellable via
// ctx), then the tick loop under the run's private telemetry sink.
func execute(ctx context.Context, spec sim.RunSpec, tel *telemetry.Telemetry, fl *flight.Recorder, defaultEpisodes int) (*sim.Result, error) {
	scn, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	episodes := spec.Episodes
	if episodes <= 0 {
		episodes = defaultEpisodes
	}
	pol, err := sim.NewPolicy(ctx, spec.PolicyName(), scn, episodes)
	if err != nil {
		return nil, err
	}
	scn.Telemetry = tel
	scn.Flight = fl
	return sim.RunScenarioContext(ctx, scn, pol)
}
