// Package server turns the simulator into a long-lived, multi-tenant
// service: a run manager owning a bounded submission queue with
// backpressure, a worker pool executing scenario runs under per-run
// cancellation contexts, a run registry with lifecycle states, and a
// capped in-memory result store. Each run records into its own telemetry
// sink so metrics and traces never bleed across tenants. The HTTP API in
// api.go exposes the manager; cmd/mtatd serves it and cmd/mtatctl (via
// client.go) drives it.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// State is a run's lifecycle phase: queued → running → done | failed |
// cancelled.
type State string

// Run lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Manager sizing defaults.
const (
	DefaultQueueCap = 64
	DefaultMaxRuns  = 256
	// DefaultRunTraceCapacity bounds each run's private trace ring. The
	// telemetry default (1<<16 events) is sized for one process-wide
	// sink; a service retaining hundreds of runs wants a smaller ring.
	DefaultRunTraceCapacity = 1 << 12
	// DefaultCompactEvery is the number of journal delta records between
	// snapshot compactions when persistence is enabled.
	DefaultCompactEvery = 1024
	// DefaultFlightCapacity sizes each run's flight-recorder ring (recent
	// core events retained for postmortems).
	DefaultFlightCapacity = 256
)

// Config sizes the run manager.
type Config struct {
	// Workers is the worker pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueCap bounds the submission queue; submissions beyond it are
	// rejected with ErrQueueFull (<= 0 selects DefaultQueueCap).
	QueueCap int
	// MaxRuns caps retained finished runs; the oldest finished run (its
	// registry entry, result, and telemetry) is evicted beyond the cap
	// (<= 0 selects DefaultMaxRuns).
	MaxRuns int
	// RunTraceCapacity sizes each run's private trace ring (<= 0 selects
	// DefaultRunTraceCapacity).
	RunTraceCapacity int
	// FlightCapacity sizes each run's flight-recorder ring (<= 0 selects
	// DefaultFlightCapacity).
	FlightCapacity int
	// DefaultEpisodes is the MTAT in-process training budget for specs
	// that omit episodes (<= 0 selects sim.DefaultPretrainEpisodes).
	DefaultEpisodes int
	// Telemetry is the daemon-level sink for the manager's own metrics
	// (submissions, completions, queue depth). Nil disables them.
	Telemetry *telemetry.Telemetry
	// DataDir enables crash-safe persistence: accepted specs, state
	// transitions, and result summaries are journaled there, and a
	// restarted manager replays the journal, re-enqueueing every run the
	// previous incarnation accepted but did not finish (at-least-once
	// execution — see DESIGN.md §10). Empty keeps all state in memory.
	DataDir string
	// CompactEvery is the number of journal delta records between
	// snapshot compactions (<= 0 selects DefaultCompactEvery).
	CompactEvery int
	// Fsync syncs the journal after every append; off, a process crash
	// loses nothing but an OS crash may drop the page-cache tail.
	Fsync bool
	// Logf receives operational log lines (evictions, journal errors,
	// recovery summaries). Nil selects the standard library logger.
	Logf func(format string, args ...any)
}

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the queue is at capacity —
	// the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("server: submission queue full")
	// ErrShuttingDown rejects submissions after Shutdown began — mapped
	// to 503.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrNotFound reports an unknown run ID — mapped to 404.
	ErrNotFound = errors.New("server: run not found")
)

// run is the registry entry. All mutable fields are guarded by the
// manager's mutex; done is closed exactly once when the run reaches a
// terminal state.
type run struct {
	id        string
	spec      sim.RunSpec
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *sim.Result
	// summary is the journaled result of a run finished by a previous
	// incarnation — the full sim.Result and trace die with the process,
	// the summary survives it.
	summary *RunResult
	tel     *telemetry.Telemetry
	flight  *flight.Recorder
	// sc is the submit-time span context (the API request's server span
	// when the submission arrived with a traceparent); the worker parents
	// the run.execute span under it so the whole run joins the caller's
	// trace. trace alone survives journal replay.
	sc     telemetry.SpanContext
	trace  telemetry.TraceID
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// Manager owns the submission queue, the worker pool, and the run
// registry. All methods are safe for concurrent use.
type Manager struct {
	cfg  Config
	jn   *journal.Journal // nil without a DataDir
	logf func(format string, args ...any)

	mu        sync.Mutex
	runs      map[string]*run
	order     []string // submission order, for List
	finished  []string // finish order, for result-store eviction
	closed    bool
	nextID    int
	recovered int // runs re-enqueued by journal replay at startup

	queue chan *run
	wg    sync.WaitGroup

	mSubmitted, mRejected *telemetry.Counter
	mDone, mFailed        *telemetry.Counter
	mCancelled, mEvicted  *telemetry.Counter
	gQueued, gRunning     *telemetry.Gauge
	gRetained             *telemetry.Gauge
}

// NewManager builds a manager and starts its worker pool. With a
// Config.DataDir it first opens the journal there, replays it, and
// re-enqueues every run the previous incarnation accepted but did not
// finish; the error reports an unreadable data dir or a replay veto.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	if cfg.RunTraceCapacity <= 0 {
		cfg.RunTraceCapacity = DefaultRunTraceCapacity
	}
	if cfg.FlightCapacity <= 0 {
		cfg.FlightCapacity = DefaultFlightCapacity
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	m := &Manager{
		cfg:  cfg,
		logf: cfg.Logf,
		runs: make(map[string]*run),
	}
	if m.logf == nil {
		m.logf = log.Printf
	}
	reg := cfg.Telemetry.Metrics()
	m.mSubmitted = reg.Counter("server_runs_submitted_total")
	m.mRejected = reg.Counter("server_runs_rejected_total")
	m.mDone = reg.Counter("server_runs_done_total")
	m.mFailed = reg.Counter("server_runs_failed_total")
	m.mCancelled = reg.Counter("server_runs_cancelled_total")
	m.mEvicted = reg.Counter("server_results_evicted_total")
	m.gQueued = reg.Gauge("server_queue_depth")
	m.gRunning = reg.Gauge("server_runs_running")
	m.gRetained = reg.Gauge("server_results_retained")

	var pending []*run
	if cfg.DataDir != "" {
		rs := newReplayState()
		jn, stats, err := journal.Open(cfg.DataDir,
			journal.Options{Fsync: cfg.Fsync, Telemetry: cfg.Telemetry}, rs.apply)
		if err != nil {
			return nil, dataDirError(err)
		}
		m.jn = jn
		pending = m.restore(rs)
		m.recovered = len(pending)
		if stats.Records > 0 || stats.Torn {
			m.logf("server: journal replay: %d records, %d runs retained, %d re-enqueued, torn=%v",
				stats.Records, len(m.runs), len(pending), stats.Torn)
		}
	}
	// The queue must absorb the recovered backlog even when it exceeds
	// the admission cap (Submit still enforces cfg.QueueCap for new work).
	capacity := cfg.QueueCap
	if len(pending) > capacity {
		capacity = len(pending)
	}
	m.queue = make(chan *run, capacity)
	for _, r := range pending {
		m.queue <- r
	}
	m.gQueued.Set(float64(len(m.queue)))
	m.gRetained.Set(float64(len(m.finished)))
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// newRunTelemetry builds one run's private telemetry sink.
func newRunTelemetry(cfg Config) *telemetry.Telemetry {
	return telemetry.NewWithConfig(telemetry.Config{TraceCapacity: cfg.RunTraceCapacity})
}

// newRunContext builds one run's cancellation context.
func newRunContext() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// Workers returns the worker pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Ready reports whether the node should receive traffic: construction
// already implies the journal replay finished, so readiness is "not
// draining and the admission queue below capacity". The reason string
// explains a false verdict — served verbatim by GET /readyz.
func (m *Manager) Ready() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, "draining: shutdown in progress"
	}
	if len(m.queue) >= m.cfg.QueueCap {
		return false, fmt.Sprintf("queue saturated: %d/%d", len(m.queue), m.cfg.QueueCap)
	}
	return true, "ok"
}

// traceOrEmpty renders a trace ID for a journal record, "" when unset.
func traceOrEmpty(id telemetry.TraceID) string {
	if id.IsZero() {
		return ""
	}
	return id.String()
}

// Stats snapshots the manager's load signal — the numbers a fleet
// scheduler weighs when placing work on this node. Served at
// GET /api/v1/status and mirrored by the server_queue_depth,
// server_runs_running, and server_results_retained gauges.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Workers:         m.cfg.Workers,
		QueueDepth:      len(m.queue),
		QueueCap:        m.cfg.QueueCap,
		RetainedResults: len(m.finished),
		MaxRuns:         m.cfg.MaxRuns,
		TotalRuns:       len(m.runs),
		RecoveredRuns:   m.recovered,
		Draining:        m.closed,
	}
	for _, r := range m.runs {
		switch r.state {
		case StateQueued:
			s.QueuedRuns++
		case StateRunning:
			s.ActiveRuns++
		}
	}
	return s
}

// Submit validates the spec and enqueues it, returning the queued run's
// status. It fails fast with ErrQueueFull when the queue is at capacity
// and ErrShuttingDown after Shutdown began.
func (m *Manager) Submit(spec sim.RunSpec) (RunStatus, error) {
	return m.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit under a caller context: when ctx carries a span
// context (the API middleware puts the request's server span there), the
// run joins that trace — the journal append and the eventual execution
// record child spans, and the run's status reports the trace ID.
func (m *Manager) SubmitCtx(ctx context.Context, spec sim.RunSpec) (RunStatus, error) {
	if err := spec.Validate(); err != nil {
		return RunStatus{}, err
	}
	sc := telemetry.SpanContextFrom(ctx)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.mRejected.Inc()
		return RunStatus{}, ErrShuttingDown
	}
	// Admission is checked against the configured cap (the channel may be
	// larger while a recovered backlog drains); under m.mu the queue only
	// shrinks, so the send below cannot block.
	if len(m.queue) >= m.cfg.QueueCap || len(m.queue) == cap(m.queue) {
		m.mRejected.Inc()
		return RunStatus{}, ErrQueueFull
	}
	m.nextID++
	runCtx, cancel := newRunContext()
	r := &run{
		id:        fmt.Sprintf("r%06d", m.nextID),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		tel:       newRunTelemetry(m.cfg),
		flight:    flight.New(m.cfg.FlightCapacity),
		sc:        sc,
		trace:     sc.Trace,
		ctx:       runCtx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	// Journal before exposing the run: once Submit returns the ID, the
	// acceptance must survive a crash. A failed append rejects the
	// submission instead of silently degrading durability.
	if m.jn != nil {
		var jspan *telemetry.ActiveSpan
		if sc.Valid() {
			_, jspan = m.cfg.Telemetry.Spans().StartSpan(ctx, "journal.append",
				telemetry.SA("run", r.id), telemetry.SA("rec", recRunSubmitted))
		}
		rec := runSubmittedRec{ID: r.id, Spec: r.spec, SubmittedAt: r.submitted, Trace: traceOrEmpty(r.trace)}
		if err := m.jn.Append(recRunSubmitted, rec); err != nil {
			jspan.End(err)
			m.nextID--
			cancel()
			m.mRejected.Inc()
			return RunStatus{}, fmt.Errorf("server: journal submission: %w", err)
		}
		jspan.End(nil)
	}
	m.queue <- r
	m.runs[r.id] = r
	m.order = append(m.order, r.id)
	m.mSubmitted.Inc()
	m.gQueued.Set(float64(len(m.queue)))
	return r.status(), nil
}

// Get returns a run's status snapshot.
func (m *Manager) Get(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.status(), nil
}

// List returns every retained run in submission order.
func (m *Manager) List() []RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunStatus, 0, len(m.order))
	for _, id := range m.order {
		if r, ok := m.runs[id]; ok {
			out = append(out, r.status())
		}
	}
	return out
}

// Result returns a finished run's full simulation result (nil until the
// run is done).
func (m *Manager) Result(id string) (*sim.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.result, nil
}

// Events returns a run's private trace for streaming. The tracer is safe
// for concurrent use, so callers may read it while the run is live.
func (m *Manager) Events(id string) (*telemetry.Tracer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.tel.Tracer(), nil
}

// Flight returns a run's flight recorder. The recorder is safe for
// concurrent use, so a dump can be taken while the run is live; a run
// finished by a previous incarnation returns an empty recorder (flight
// rings are not journaled).
func (m *Manager) Flight(id string) (*flight.Recorder, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.flight, nil
}

// Cancel stops a run: a queued run is marked cancelled immediately (the
// worker will skip it), a running run's context is cancelled and the
// worker marks it once the tick loop observes the cancellation. Terminal
// runs are left untouched. The returned status reflects the
// post-cancellation view.
func (m *Manager) Cancel(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch r.state {
	case StateQueued:
		r.cancel()
		m.finishLocked(r, StateCancelled, "cancelled while queued", nil)
	case StateRunning:
		r.cancel()
	}
	return r.status(), nil
}

// WaitRun blocks until the run reaches a terminal state or ctx is done,
// then returns the final status.
func (m *Manager) WaitRun(ctx context.Context, id string) (RunStatus, error) {
	m.mu.Lock()
	r, ok := m.runs[id]
	m.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-r.done:
		return m.Get(id)
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
}

// Shutdown drains the service: it stops accepting submissions, lets
// queued and running work finish, and returns once every worker has
// exited. If ctx expires first, every outstanding run is cancelled, the
// workers are still waited for (cancellation stops runs between ticks),
// and ctx's error is returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		m.mu.Lock()
		for _, r := range m.runs {
			if !r.state.Terminal() {
				r.cancel()
			}
		}
		m.mu.Unlock()
		<-drained
		err = ctx.Err()
	}
	if m.jn != nil {
		if cerr := m.jn.Close(); cerr != nil {
			m.logf("server: journal close: %v", cerr)
		}
	}
	return err
}

// worker drains the queue until it is closed.
func (m *Manager) worker() {
	defer m.wg.Done()
	for r := range m.queue {
		m.runOne(r)
	}
}

// runOne executes a single queued run through its lifecycle.
func (m *Manager) runOne(r *run) {
	m.mu.Lock()
	if r.state != StateQueued { // cancelled while queued
		m.gQueued.Set(float64(len(m.queue)))
		m.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.started = time.Now()
	m.journalLocked(recRunStarted, runStartedRec{ID: r.id, StartedAt: r.started})
	m.gQueued.Set(float64(len(m.queue)))
	m.gRunning.Set(m.gRunning.Value() + 1)
	m.mu.Unlock()

	// When the submission carried a span context, the execution becomes a
	// child span in the submitter's trace: mtatctl submit → fleet dispatch
	// → node submit → run.execute read as one tree.
	ctx := r.ctx
	var span *telemetry.ActiveSpan
	if r.sc.Valid() {
		ctx, span = m.cfg.Telemetry.Spans().StartSpan(
			telemetry.ContextWithSpanContext(ctx, r.sc), "run.execute",
			telemetry.SA("run", r.id), telemetry.SA("policy", r.spec.PolicyName()))
	}
	res, err := execute(ctx, r.spec, r.tel, r.flight, m.cfg.DefaultEpisodes)
	span.End(err)
	// Each run records into a private sink; re-publish its core
	// accounting on the daemon sink so /metrics carries cross-run
	// sim_* aggregates.
	if err == nil && res != nil {
		res.Core.Publish(m.cfg.Telemetry)
	}

	m.mu.Lock()
	m.gRunning.Set(m.gRunning.Value() - 1)
	switch {
	case err == nil:
		m.finishLocked(r, StateDone, "", res)
	case errors.Is(err, context.Canceled):
		m.finishLocked(r, StateCancelled, "cancelled", nil)
	default:
		m.finishLocked(r, StateFailed, err.Error(), nil)
	}
	m.mu.Unlock()
}

// finishLocked moves a run to a terminal state and evicts the oldest
// finished runs beyond the result-store cap. Callers hold m.mu.
func (m *Manager) finishLocked(r *run, st State, msg string, res *sim.Result) {
	r.state = st
	r.errMsg = msg
	r.result = res
	r.finished = time.Now()
	r.cancel() // release the context's resources in every path
	close(r.done)
	switch st {
	case StateDone:
		m.mDone.Inc()
	case StateFailed:
		m.mFailed.Inc()
	case StateCancelled:
		m.mCancelled.Inc()
	}
	m.finished = append(m.finished, r.id)
	m.journalLocked(recRunFinished, runFinishedRec{
		ID: r.id, State: st, Error: msg, FinishedAt: r.finished, Result: summarizeOrNil(res),
	})
	m.evictLocked()
	m.maybeCompactLocked()
}

// evictLocked drops the oldest finished runs beyond the result-store
// cap. Every eviction is accounted: the server_results_evicted_total
// counter and a log line record what vanished, so recovery tests can
// reconcile retained+evicted against submissions. Callers hold m.mu.
func (m *Manager) evictLocked() {
	for len(m.finished) > m.cfg.MaxRuns {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.runs, evict)
		for i, id := range m.order {
			if id == evict {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.mEvicted.Inc()
		m.logf("server: result store full (max %d): evicted oldest finished run %s",
			m.cfg.MaxRuns, evict)
	}
	m.gRetained.Set(float64(len(m.finished)))
}

// summarizeOrNil is summarize tolerating the nil result of a failed or
// cancelled run.
func summarizeOrNil(res *sim.Result) *RunResult {
	if res == nil {
		return nil
	}
	return summarize(res)
}

// execute materializes and runs one spec: scenario build, policy
// construction (including in-process MTAT pre-training, cancellable via
// ctx), then the tick loop under the run's private telemetry sink.
func execute(ctx context.Context, spec sim.RunSpec, tel *telemetry.Telemetry, fl *flight.Recorder, defaultEpisodes int) (*sim.Result, error) {
	scn, err := spec.Scenario()
	if err != nil {
		return nil, err
	}
	episodes := spec.Episodes
	if episodes <= 0 {
		episodes = defaultEpisodes
	}
	pol, err := sim.NewPolicy(ctx, spec.PolicyName(), scn, episodes)
	if err != nil {
		return nil, err
	}
	scn.Telemetry = tel
	scn.Flight = fl
	return sim.RunScenarioContext(ctx, scn, pol)
}
