package server

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

var updateGolden = flag.Bool("update", false, "rewrite the committed pre-tenant WAL fixture")

// preTenantWAL is the committed fixture: a journal segment written by a
// daemon that predates multi-tenancy, so no record carries a tenant
// field. The replay test guarantees those WALs stay loadable forever.
const preTenantWAL = "testdata/pre_tenant/seg-00000001.wal"

// walFrame encodes one journal record exactly as journal.Append does:
// uint32 payload length + uint32 CRC32-Castagnoli, then the record JSON.
func walFrame(t *testing.T, typ string, payload any) []byte {
	t.Helper()
	data, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal %s payload: %v", typ, err)
	}
	rec, err := json.Marshal(struct {
		Type string          `json:"type"`
		Data json.RawMessage `json:"data,omitempty"`
	}{Type: typ, Data: data})
	if err != nil {
		t.Fatalf("marshal %s record: %v", typ, err)
	}
	frame := make([]byte, 8, 8+len(rec))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(rec, crc32.MakeTable(crc32.Castagnoli)))
	return append(frame, rec...)
}

// preTenantSegment regenerates the fixture bytes from source (used by
// -update): one finished run and one still-queued run, with payloads in
// the exact pre-tenant shape — no "tenant", no "trace" keys anywhere.
// The queued run's spec mirrors shortSpec so re-execution stays fast.
func preTenantSegment(t *testing.T) []byte {
	t.Helper()
	spec := func(seed int64) map[string]any {
		return map[string]any{
			"lc":         "redis",
			"bes":        []string{"sssp"},
			"policy":     "memtis",
			"load":       map[string]any{"kind": "constant", "frac": 0.5, "duration_s": 10},
			"scale":      16,
			"seed":       seed,
			"duration_s": 10,
		}
	}
	var seg []byte
	seg = append(seg, walFrame(t, recRunSubmitted, map[string]any{
		"id":           "r000001",
		"spec":         spec(41),
		"submitted_at": "2026-01-02T03:04:05Z",
	})...)
	seg = append(seg, walFrame(t, recRunStarted, map[string]any{
		"id":         "r000001",
		"started_at": "2026-01-02T03:04:06Z",
	})...)
	seg = append(seg, walFrame(t, recRunFinished, map[string]any{
		"id":          "r000001",
		"state":       "done",
		"finished_at": "2026-01-02T03:04:07Z",
		"result": map[string]any{
			"policy":            "memtis",
			"slo_met":           true,
			"lc_violation_rate": 0.01,
			"lc_max_p99_s":      0.002,
			"lc_mean_p99_s":     0.001,
			"be_fairness":       0.93,
			"be_throughput":     1.5,
			"migrated_bytes":    1048576,
			"ticks":             10,
		},
	})...)
	seg = append(seg, walFrame(t, recRunSubmitted, map[string]any{
		"id":           "r000002",
		"spec":         spec(42),
		"submitted_at": "2026-01-02T03:04:08Z",
	})...)
	return seg
}

// TestPreTenantWALReplay replays the committed pre-tenant segment
// through a tenant-aware manager: the finished run must come back with
// its journaled result and empty tenant, the queued run must re-execute
// (at-least-once) under anonymous attribution, and the anonymous
// tenant's meters must absorb the recovered work — old WALs never need
// rewriting to run on a multi-tenant daemon.
func TestPreTenantWALReplay(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(preTenantWAL), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(preTenantWAL, preTenantSegment(t), 0o644); err != nil {
			t.Fatalf("write fixture: %v", err)
		}
		t.Logf("rewrote %s", preTenantWAL)
		return
	}
	fixture, err := os.ReadFile(preTenantWAL)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}

	// The fixture must stay byte-identical to its generator: a drift
	// means someone edited the generator without -update (or the file
	// by hand) and the test would no longer cover the committed bytes.
	if want := preTenantSegment(t); string(fixture) != string(want) {
		t.Fatalf("fixture drifted from generator: run `go test ./internal/server -run TestPreTenantWALReplay -update`")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), fixture, 0o644); err != nil {
		t.Fatalf("stage fixture: %v", err)
	}

	// A configured (non-permissive) registry is the harder case: the
	// WAL's runs belong to nobody in it, so replay must fall back to
	// anonymous attribution rather than reject or misattribute.
	tel := telemetry.New()
	reg, err := tenant.New(&tenant.Config{Tenants: []tenant.Spec{
		{Name: "acme", Token: "tok-acme", Class: tenant.ClassLC},
	}}, tel)
	if err != nil {
		t.Fatalf("tenant.New: %v", err)
	}
	m := newTestManager(t, Config{Workers: 1, Telemetry: tel, Tenants: reg, DataDir: dir})
	defer shutdownOrFail(t, m, time.Minute)

	if got := m.Stats().RecoveredRuns; got != 1 {
		t.Fatalf("RecoveredRuns = %d, want 1 (only r000002 was unfinished)", got)
	}

	st, err := m.Get("r000001")
	if err != nil {
		t.Fatalf("Get(r000001): %v", err)
	}
	if st.State != StateDone || st.Tenant != "" {
		t.Fatalf("r000001 replayed as state=%s tenant=%q, want done with empty tenant", st.State, st.Tenant)
	}
	if st.Result == nil || st.Result.Policy != "memtis" || st.Result.Ticks != 10 {
		t.Fatalf("r000001 result not preserved across replay: %+v", st.Result)
	}
	if want := time.Date(2026, 1, 2, 3, 4, 7, 0, time.UTC); st.FinishedAt == nil || !st.FinishedAt.Equal(want) {
		t.Fatalf("r000001 finished_at = %v, want %v", st.FinishedAt, want)
	}

	// The queued run restarts from scratch and must complete under the
	// anonymous identity.
	st2 := waitState(t, m, "r000002", StateDone)
	if st2.Tenant != "" {
		t.Fatalf("r000002 re-executed under tenant %q, want anonymous (empty)", st2.Tenant)
	}
	u := reg.Attribution("").Usage()
	if u.Runs < 1 {
		t.Fatalf("anonymous usage after recovery = %+v, want >= 1 completed run", u)
	}
	if u.Queued != 0 || u.Active != 0 {
		t.Fatalf("anonymous usage leaked accounting after completion: %+v", u)
	}
}
