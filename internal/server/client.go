package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/backoff"
	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
)

// Client drives the mtatd control plane over HTTP — the library behind
// cmd/mtatctl, usable directly by tests and tooling.
type Client struct {
	// BaseURL is the daemon's root URL (e.g. "http://127.0.0.1:7070").
	BaseURL string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
	// Token, when set, is sent as a bearer token on every request
	// (mtatctl wires -token / $MTAT_TOKEN here; the fleet dispatcher
	// its -node-token).
	Token string
	// OnBehalfOf attributes requests to the named tenant via the
	// X-Mtat-Tenant header. The authenticated tenant must be an admin
	// (the fleet dispatcher uses this to carry each cell's originating
	// tenant to the node).
	OnBehalfOf string
}

// NewClient returns a client for addr, which may be a bare host:port or a
// full http:// URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimRight(addr, "/")}
}

// APIError is a non-2xx response decoded from the server's error
// envelope.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter carries the response's Retry-After header (0 when
	// absent) — quota and backpressure 429s tell the client when to
	// come back.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mtatd: %s (HTTP %d)", e.Message, e.StatusCode)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues the request and decodes a JSON response into out (skipped
// when out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// applyAuth attaches the client's bearer token and on-behalf-of
// attribution to an outgoing request.
func (c *Client) applyAuth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if c.OnBehalfOf != "" {
		req.Header.Set("X-Mtat-Tenant", c.OnBehalfOf)
	}
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	var env apiError
	if json.Unmarshal(data, &env) == nil && env.Error != "" {
		apiErr.Message = env.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit enqueues a run spec and returns the queued run's status.
func (c *Client) Submit(ctx context.Context, spec sim.RunSpec) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/runs", spec, &st)
	return st, err
}

// Run fetches one run's status.
func (c *Client) Run(ctx context.Context, id string) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/runs/"+id, nil, &st)
	return st, err
}

// Runs lists every retained run.
func (c *Client) Runs(ctx context.Context) ([]RunStatus, error) {
	var out []RunStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/runs", nil, &out)
	return out, err
}

// Cancel stops a queued or running run.
func (c *Client) Cancel(ctx context.Context, id string) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodDelete, "/api/v1/runs/"+id, nil, &st)
	return st, err
}

// Status fetches the node's load signal (queue depth, active runs,
// result-store occupancy) — what a fleet scheduler weighs for placement.
func (c *Client) Status(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/api/v1/status", nil, &st)
	return st, err
}

// Meta fetches the service vocabulary.
func (c *Client) Meta(ctx context.Context) (Meta, error) {
	var meta Meta
	err := c.do(ctx, http.MethodGet, "/api/v1/meta", nil, &meta)
	return meta, err
}

// Tenants lists every tenant's live usage snapshot (admission counters,
// queue/active occupancy, rejection totals).
func (c *Client) Tenants(ctx context.Context) ([]tenant.Usage, error) {
	var out []tenant.Usage
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants", nil, &out)
	return out, err
}

// ReloadTenants pushes a new tenant config to the daemon (admin only) —
// the client-side twin of SIGHUP on a daemon launched with -tenants.
func (c *Client) ReloadTenants(ctx context.Context, cfg tenant.Config) (tenant.ReloadResult, error) {
	var res tenant.ReloadResult
	err := c.do(ctx, http.MethodPost, "/api/v1/config/tenants", cfg, &res)
	return res, err
}

// Events streams the run's trace (JSONL) into w.
func (c *Client) Events(ctx context.Context, id string, w io.Writer) error {
	return c.stream(ctx, "/api/v1/runs/"+id+"/events", w)
}

// Flight streams the run's flight-recorder dump (JSON) into w.
func (c *Client) Flight(ctx context.Context, id string, w io.Writer) error {
	return c.stream(ctx, "/api/v1/runs/"+id+"/flight", w)
}

// FlightAfter fetches the run's flight events newer than the `after`
// sequence cursor (pass 0 with haveCursor=false for the full ring) —
// the incremental fetch behind `mtatctl flight -follow`.
func (c *Client) FlightAfter(ctx context.Context, id string, after uint64, haveCursor bool) (flight.Dump, error) {
	path := "/api/v1/runs/" + id + "/flight"
	if haveCursor {
		path += "?after=" + strconv.FormatUint(after, 10)
	}
	var d flight.Dump
	err := c.do(ctx, http.MethodGet, path, nil, &d)
	return d, err
}

// StreamEvents opens the live SSE event stream for one run (or the
// daemon-wide firehose when id is ""). lastEventID, when non-empty, is
// sent as the Last-Event-ID resume cursor; the caller owns closing the
// returned stream. Reconnect policy lives in the caller (mtatctl watch
// mirrors WaitDurable's outage budget).
func (c *Client) StreamEvents(ctx context.Context, id, lastEventID string) (*telemetry.SSEStream, error) {
	path := "/api/v1/events"
	if id != "" {
		path = "/api/v1/runs/" + id + "/events"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", telemetry.SSEContentType)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return telemetry.NewSSEStream(resp.Body), nil
}

// DefaultProfileSeconds is the CPU profile duration Profile uses when
// the caller passes seconds <= 0.
const DefaultProfileSeconds = 5

// Profile streams a pprof profile from the daemon's /debug/pprof/
// surface into w: kind "cpu" samples the CPU for the given number of
// seconds (<= 0 selects DefaultProfileSeconds); "heap" and "allocs"
// snapshot instantly. The target daemon must have its profiling surface
// enabled (-pprof) or the request 404s.
func (c *Client) Profile(ctx context.Context, kind string, seconds int, w io.Writer) error {
	var path string
	switch kind {
	case "cpu":
		if seconds <= 0 {
			seconds = DefaultProfileSeconds
		}
		path = fmt.Sprintf("/debug/pprof/profile?seconds=%d", seconds)
	case "heap", "allocs":
		path = "/debug/pprof/" + kind
	default:
		return fmt.Errorf("mtatd: unknown profile kind %q (valid: cpu, heap, allocs)", kind)
	}
	return c.stream(ctx, path, w)
}

// Traces fetches the spans this daemon retains for one distributed
// trace. An unknown trace is not an error — the daemon simply holds no
// spans for it — so the caller can sweep a whole fleet and merge.
func (c *Client) Traces(ctx context.Context, trace string) ([]telemetry.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/api/v1/traces/"+trace, nil)
	if err != nil {
		return nil, err
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return telemetry.DecodeSpansJSONL(resp.Body)
}

// Metrics streams the daemon's /metrics endpoint into w in the given
// format ("json" or "prom"; "" keeps the server default).
func (c *Client) Metrics(ctx context.Context, format string, w io.Writer) error {
	path := "/metrics"
	if format != "" {
		path += "?format=" + format
	}
	return c.stream(ctx, path, w)
}

// Ready polls GET /readyz once; a non-200 answer (or transport error)
// comes back as an error carrying the daemon's reason.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("mtatd: not ready: %s (HTTP %d)",
			strings.TrimSpace(string(data)), resp.StatusCode)
	}
	return nil
}

// stream copies a GET response body into w.
func (c *Client) stream(ctx context.Context, path string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	c.applyAuth(req)
	telemetry.Inject(ctx, req.Header)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// DefaultPollInterval caps Wait's status-polling interval.
const DefaultPollInterval = 500 * time.Millisecond

// Wait polls the run until it reaches a terminal state or ctx is done,
// returning the final status. Polling starts fast and backs off
// exponentially with jitter up to poll, so short runs return promptly
// while long waits stay cheap and de-synchronized across concurrent
// waiters (the fleet dispatcher runs many). poll <= 0 selects
// DefaultPollInterval as the cap.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (RunStatus, error) {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	base := poll / 8
	if base < 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	if base > poll {
		base = poll
	}
	pol := backoff.Policy{Base: base, Max: poll}
	for attempt := 0; ; attempt++ {
		st, err := c.Run(ctx, id)
		if err != nil {
			return RunStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := pol.Sleep(ctx, attempt); err != nil {
			return st, err
		}
	}
}

// DefaultMaxOutage is WaitDurable's tolerance for consecutive transport
// failures when the caller passes maxOutage <= 0 — generous enough to
// ride out a daemon SIGKILL, journal replay, and restart.
const DefaultMaxOutage = 2 * time.Minute

// WaitDurable is Wait for callers that must survive a daemon restart:
// transport errors (connection refused while mtatd is down, resets while
// it bounces) are retried with the same backoff for up to maxOutage of
// consecutive failure before giving up, instead of failing the wait on
// the first one. A 429 is backpressure from a live daemon, not an
// outage: it never charges the outage window, and a Retry-After header
// (quota and rate-limit rejections carry one) stretches the sleep to
// the server's hint. API errors other than 429/503 still fail
// immediately — a 404 after replay means the run is truly gone, and
// retrying cannot fix a 400. The experiment harness leans on this:
// mtatd journals accepted runs before acknowledging them, so a run that
// was submitted is pollable again as soon as the restarted daemon
// finishes replay.
func (c *Client) WaitDurable(ctx context.Context, id string, poll, maxOutage time.Duration) (RunStatus, error) {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	if maxOutage <= 0 {
		maxOutage = DefaultMaxOutage
	}
	base := poll / 8
	if base < 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	if base > poll {
		base = poll
	}
	pol := backoff.Policy{Base: base, Max: poll}
	var outageStart time.Time
	for attempt := 0; ; attempt++ {
		st, err := c.Run(ctx, id)
		var retryAfter time.Duration
		switch {
		case err == nil:
			outageStart = time.Time{}
			if st.State.Terminal() {
				return st, nil
			}
		case ctx.Err() != nil:
			return RunStatus{}, ctx.Err()
		case isBackpressure(err):
			// The daemon answered — it is up, just shedding load. Reset
			// the outage clock (backpressure must not burn the restart
			// budget) and honor its Retry-After if present.
			outageStart = time.Time{}
			retryAfter = retryAfterOf(err)
		case !retryableWaitError(err):
			return RunStatus{}, err
		default:
			if outageStart.IsZero() {
				outageStart = time.Now()
			} else if time.Since(outageStart) > maxOutage {
				return RunStatus{}, fmt.Errorf("mtatd: unreachable for %s waiting on %s: %w",
					maxOutage, id, err)
			}
		}
		if retryAfter > pol.Delay(attempt) {
			if err := sleepCtx(ctx, retryAfter); err != nil {
				return st, err
			}
			continue
		}
		if err := pol.Sleep(ctx, attempt); err != nil {
			return st, err
		}
	}
}

// isBackpressure reports a 429 answer — the daemon is alive and asking
// the client to slow down.
func isBackpressure(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests
}

// retryAfterOf extracts a 429/503 response's Retry-After, 0 when absent.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableWaitError reports whether a status-poll failure is worth
// retrying: transport errors (the daemon is down or restarting) and
// backpressure answers are; other API errors are definitive.
func retryableWaitError(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	return true
}
