package server

import (
	"time"

	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Live event publishing: the manager forwards run lifecycle
// transitions, flight-recorder events, and periodic mid-run stats
// deltas onto its EventBus, where the SSE endpoints in api.go stream
// them to `mtatctl watch`. Every publish is gated on Bus.Active(topic),
// so a daemon nobody is watching pays one atomic load per potential
// event and allocates nothing.

// DefaultStatsInterval is the mid-run stats sampling period selected by
// Config.StatsInterval <= 0.
const DefaultStatsInterval = time.Second

// runTopic names a run's bus topic.
func runTopic(id string) string { return "run/" + id }

// RunStatsDelta is the periodic mid-run sample streamed as a
// `run.stats` event: cumulative counters from the run's private
// registry plus the deltas since the previous sample, so a watcher can
// render rates without keeping history. Promotion/demotion pages come
// from the PP-E counters (zero for policies that do not migrate
// through PP-E).
type RunStatsDelta struct {
	RunID string `json:"run_id"`
	// ElapsedS is wall time since the run started.
	ElapsedS float64 `json:"elapsed_s"`
	// IntervalS is wall time covered by the d_* deltas.
	IntervalS float64 `json:"interval_s"`

	Ticks       int64 `json:"ticks"`
	DTicks      int64 `json:"d_ticks"`
	Violations  int64 `json:"violations"`
	DViolations int64 `json:"d_violations"`
	Promoted    int64 `json:"promoted_pages"`
	DPromoted   int64 `json:"d_promoted_pages"`
	Demoted     int64 `json:"demoted_pages"`
	DDemoted    int64 `json:"d_demoted_pages"`

	// P99S is the current windowed LC p99 (seconds); Load the offered
	// load fraction; FMemRatio the LC fast-memory ratio.
	P99S      float64 `json:"lc_p99_s"`
	Load      float64 `json:"load"`
	FMemRatio float64 `json:"fmem_ratio"`
}

// Bus returns the manager's event bus (never nil after NewManager).
func (m *Manager) Bus() *telemetry.EventBus { return m.bus }

// publishRunLocked emits the run's current status as a `run.state`
// event. Callers hold m.mu.
func (m *Manager) publishRunLocked(r *run) {
	topic := runTopic(r.id)
	if !m.bus.Active(topic) {
		return
	}
	m.bus.Publish(telemetry.BusEvent{
		Topic:  topic,
		Kind:   telemetry.EvBusRunState,
		Tenant: tenantName(r.tn),
		Data:   r.status(),
	})
}

// flightSink returns the forwarding sink installed on a run's flight
// recorder: each core event lands on the bus as a `flight` event when
// someone is watching. The sink runs under the recorder's lock, so it
// does nothing but the gated publish.
func (m *Manager) flightSink(id string, tn string) flight.Sink {
	topic := runTopic(id)
	return func(ev flight.Event) {
		if !m.bus.Active(topic) {
			return
		}
		m.bus.Publish(telemetry.BusEvent{
			Topic:  topic,
			Kind:   telemetry.EvBusFlight,
			Tenant: tn,
			Data:   ev,
		})
	}
}

// sampleRunStats streams periodic RunStatsDelta events for a running
// run until stop closes. It resolves the run's private registry handles
// once and reads them lock-free each tick; with no watcher on the topic
// each tick is one atomic load.
func (m *Manager) sampleRunStats(r *run, stop <-chan struct{}) {
	interval := m.cfg.StatsInterval
	if interval <= 0 {
		interval = DefaultStatsInterval
	}
	topic := runTopic(r.id)
	tn := tenantName(r.tn)
	reg := r.tel.Metrics()
	cTicks := reg.Counter(telemetry.MetricSimTicks)
	cViol := reg.Counter(telemetry.MetricSimViolations)
	cProm := reg.Counter(telemetry.MetricPPEPromoted)
	cDem := reg.Counter(telemetry.MetricPPEDemoted)
	hP99 := reg.Histogram(telemetry.MetricSimP99)
	gLoad := reg.Gauge(telemetry.MetricSimLoad)
	gFMem := reg.Gauge(telemetry.MetricSimFMemRatio)

	started := time.Now()
	var last RunStatsDelta
	lastAt := started
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			if !m.bus.Active(topic) {
				continue
			}
			cur := RunStatsDelta{
				RunID:      r.id,
				ElapsedS:   now.Sub(started).Seconds(),
				IntervalS:  now.Sub(lastAt).Seconds(),
				Ticks:      cTicks.Value(),
				Violations: cViol.Value(),
				Promoted:   cProm.Value(),
				Demoted:    cDem.Value(),
				P99S:       hP99.Quantile(0.99),
				Load:       gLoad.Value(),
				FMemRatio:  gFMem.Value(),
			}
			cur.DTicks = cur.Ticks - last.Ticks
			cur.DViolations = cur.Violations - last.Violations
			cur.DPromoted = cur.Promoted - last.Promoted
			cur.DDemoted = cur.Demoted - last.Demoted
			m.bus.Publish(telemetry.BusEvent{
				Topic:  topic,
				Kind:   telemetry.EvBusRunStats,
				Tenant: tn,
				Data:   cur,
			})
			last, lastAt = cur, now
		}
	}
}

// syncFlightDropsLocked mirrors a run's flight-ring loss into the
// daemon registry as flight_events_dropped_total{run}. The series is
// only created once the run actually dropped, so the registry does not
// accumulate a zero series per run. Callers hold m.mu.
func (m *Manager) syncFlightDropsLocked(r *run) {
	d := int64(r.flight.Dropped())
	if d == 0 {
		return
	}
	c := m.cfg.Telemetry.Metrics().Counter(
		telemetry.SeriesName(telemetry.MetricFlightDropped, "run", r.id))
	if delta := d - c.Value(); delta > 0 {
		c.Add(delta)
	}
}

// SyncFlightDrops mirrors one run's flight-ring loss into the daemon
// registry (no-op for unknown runs — the HTTP layer already 404ed).
func (m *Manager) SyncFlightDrops(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.runs[id]; ok && r.flight != nil {
		m.syncFlightDropsLocked(r)
	}
}

// SyncBusMetrics mirrors the bus's cumulative publish/overflow
// accounting into the daemon registry. Called when an SSE stream ends
// and at run finish — often enough for scrape freshness without a
// dedicated goroutine.
func (m *Manager) SyncBusMetrics() {
	reg := m.cfg.Telemetry.Metrics()
	syncCounterTo(reg.Counter(telemetry.MetricBusPublished), int64(m.bus.Published()))
	syncCounterTo(reg.Counter(telemetry.MetricBusDropped), int64(m.bus.Dropped()))
}

// syncCounterTo raises a counter to match a monotonic source value.
func syncCounterTo(c *telemetry.Counter, want int64) {
	if delta := want - c.Value(); delta > 0 {
		c.Add(delta)
	}
}
