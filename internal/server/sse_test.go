package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

// readBusEvents drains frames from an SSE stream until want bus events
// arrived or the predicate stops the read. Control frames are skipped;
// each bus event's wire id feeds the resume cursor.
func readBusEvents(t *testing.T, st *telemetry.SSEStream, want int,
	stop func(ev telemetry.BusEvent) bool) (evs []telemetry.BusEvent, lastID string) {
	t.Helper()
	for {
		frame, err := st.Next()
		if err != nil {
			t.Fatalf("stream ended early after %d events: %v", len(evs), err)
		}
		switch frame.Event {
		case telemetry.EvStreamHello, telemetry.EvStreamReset:
			continue
		case telemetry.EvStreamGap:
			t.Fatalf("unexpected gap frame: %s", frame.Data)
		}
		var ev telemetry.BusEvent
		if err := json.Unmarshal(frame.Data, &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", frame.Data, err)
		}
		evs = append(evs, ev)
		lastID = frame.ID
		if stop != nil && stop(ev) {
			return evs, lastID
		}
		if want > 0 && len(evs) >= want {
			return evs, lastID
		}
	}
}

// TestSSEResumeAcrossDisconnect is the tentpole's durability test: kill
// the SSE connection mid-run, reconnect with Last-Event-ID, and demand
// the merged sequence is gap-free and duplicate-free through the
// terminal run.state event.
func TestSSEResumeAcrossDisconnect(t *testing.T) {
	tel := telemetry.New()
	m := newTestManager(t, Config{
		Workers:   1,
		QueueCap:  8,
		Telemetry: tel,
		// longSpec's 10ms tick floods flight events; a deep ring keeps
		// the disconnect window fully covered so the resume is gap-free.
		Bus:           telemetry.NewEventBus(telemetry.BusConfig{RingCapacity: 1 << 16}),
		StatsInterval: 20 * time.Millisecond,
	})
	defer shutdownOrFail(t, m, 10*time.Second)
	srv := httptest.NewServer(NewHandler(m, tel))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, longSpec(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, st.ID, StateRunning)

	// First connection: consume a handful of live events, then kill the
	// connection mid-run (client-side close ≈ dropped proxy).
	s1, err := c.StreamEvents(ctx, st.ID, "")
	if err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	first, lastID := readBusEvents(t, s1, 5, nil)
	s1.Close()
	if lastID == "" {
		t.Fatal("no event id after 5 events")
	}

	// Let the run produce more events while nobody is connected — the
	// topic ring must retain them for the resume.
	time.Sleep(100 * time.Millisecond)

	// Reconnect with the cursor, cancel the run, and read through to the
	// terminal run.state.
	s2, err := c.StreamEvents(ctx, st.ID, lastID)
	if err != nil {
		t.Fatalf("StreamEvents(resume): %v", err)
	}
	defer s2.Close()
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	rest, _ := readBusEvents(t, s2, 0, func(ev telemetry.BusEvent) bool {
		if ev.Kind != telemetry.EvBusRunState {
			return false
		}
		var rs RunStatus
		raw, _ := json.Marshal(ev.Data)
		return json.Unmarshal(raw, &rs) == nil && rs.State.Terminal()
	})

	// Merged stream: bus IDs strictly consecutive — no gaps, no dupes.
	merged := append(first, rest...)
	if len(merged) < 6 {
		t.Fatalf("merged only %d events", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].ID != merged[i-1].ID+1 {
			t.Fatalf("merged sequence broken at %d: id %d then %d",
				i, merged[i-1].ID, merged[i].ID)
		}
	}

	// The stream carried all three kinds: lifecycle, stats, flight.
	kinds := map[string]bool{}
	for _, ev := range merged {
		kinds[ev.Kind] = true
	}
	if !kinds[telemetry.EvBusRunState] || !kinds[telemetry.EvBusRunStats] {
		t.Fatalf("missing event kinds in %v", kinds)
	}
}

// TestSSETerminalRunServesJSONContract: the /events endpoint keeps the
// JSONL trace contract for non-SSE clients.
func TestSSEContentNegotiation(t *testing.T) {
	tel := telemetry.New()
	m := newTestManager(t, Config{Workers: 1, QueueCap: 8, Telemetry: tel})
	defer shutdownOrFail(t, m, 10*time.Second)
	srv := httptest.NewServer(NewHandler(m, tel))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	st, err := c.Submit(ctx, shortSpec(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	// Plain GET (no Accept: text/event-stream) still streams the trace.
	resp, err := srv.Client().Get(srv.URL + "/api/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct == telemetry.SSEContentType {
		t.Fatalf("plain GET negotiated SSE (Content-Type %q)", ct)
	}

	// SSE on an unknown run 404s instead of hanging a stream open.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/runs/nope/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", telemetry.SSEContentType)
	resp404, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("SSE on unknown run = %d, want 404", resp404.StatusCode)
	}
}
