package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// Journal record types written by the manager. Deltas follow the run
// lifecycle; a snapshot record (written by compaction) resets the whole
// registry, so replay is snapshot + deltas since.
const (
	recRunSubmitted = "run.submitted"
	recRunStarted   = "run.started"
	recRunFinished  = "run.finished"
	recSnapshot     = "snapshot"
)

// runSubmittedRec journals an accepted submission — the durable promise
// that the run will execute (at least once) even across a daemon crash.
type runSubmittedRec struct {
	ID          string      `json:"id"`
	Spec        sim.RunSpec `json:"spec"`
	SubmittedAt time.Time   `json:"submitted_at"`
	// Trace preserves the submission's distributed trace ID across a
	// crash (absent in pre-tracing journals).
	Trace string `json:"trace,omitempty"`
	// Tenant preserves run ownership across a crash so a restarted
	// daemon re-charges the right tenant's quotas. Empty — including
	// every record in a pre-tenant journal — means anonymous.
	Tenant string `json:"tenant,omitempty"`
}

// runStartedRec journals a queued→running transition.
type runStartedRec struct {
	ID        string    `json:"id"`
	StartedAt time.Time `json:"started_at"`
}

// runFinishedRec journals a terminal transition with the run's result
// summary — what a restarted daemon serves for the run thereafter (the
// full time series and trace die with the process).
type runFinishedRec struct {
	ID         string     `json:"id"`
	State      State      `json:"state"`
	Error      string     `json:"error,omitempty"`
	FinishedAt time.Time  `json:"finished_at"`
	Result     *RunResult `json:"result,omitempty"`
	Tenant     string     `json:"tenant,omitempty"`
}

// managerSnapshot is the compaction record: the full registry at one
// instant. Runs are in submission order; Finished lists run IDs in
// finish order (the eviction order).
type managerSnapshot struct {
	NextID   int         `json:"next_id"`
	Runs     []RunStatus `json:"runs"`
	Finished []string    `json:"finished"`
}

// replayState accumulates journal records into the registry image the
// manager boots from.
type replayState struct {
	runs     map[string]*RunStatus
	order    []string
	finished []string
	nextID   int
}

func newReplayState() *replayState {
	return &replayState{runs: make(map[string]*RunStatus)}
}

// apply folds one journal record into the state. Unknown record types
// are skipped (forward compatibility: an old daemon replaying a newer
// log must not crash); malformed payloads abort the replay.
func (rs *replayState) apply(rec journal.Record) error {
	switch rec.Type {
	case recSnapshot:
		var snap managerSnapshot
		if err := rec.Decode(&snap); err != nil {
			return err
		}
		rs.runs = make(map[string]*RunStatus, len(snap.Runs))
		rs.order = rs.order[:0]
		for i := range snap.Runs {
			st := snap.Runs[i]
			rs.runs[st.ID] = &st
			rs.order = append(rs.order, st.ID)
			rs.noteID(st.ID)
		}
		rs.finished = append(rs.finished[:0], snap.Finished...)
		if snap.NextID > rs.nextID {
			rs.nextID = snap.NextID
		}
	case recRunSubmitted:
		var r runSubmittedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		if _, ok := rs.runs[r.ID]; ok {
			return nil // duplicate submission record; first wins
		}
		rs.runs[r.ID] = &RunStatus{
			ID: r.ID, State: StateQueued, Spec: r.Spec, SubmittedAt: r.SubmittedAt,
			Trace: r.Trace, Tenant: r.Tenant,
		}
		rs.order = append(rs.order, r.ID)
		rs.noteID(r.ID)
	case recRunStarted:
		var r runStartedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		if st, ok := rs.runs[r.ID]; ok && !st.State.Terminal() {
			t := r.StartedAt
			st.State, st.StartedAt = StateRunning, &t
		}
	case recRunFinished:
		var r runFinishedRec
		if err := rec.Decode(&r); err != nil {
			return err
		}
		st, ok := rs.runs[r.ID]
		if !ok {
			return nil // finished record without a submission; drop
		}
		t := r.FinishedAt
		st.State, st.Error, st.FinishedAt, st.Result = r.State, r.Error, &t, r.Result
		for _, id := range rs.finished {
			if id == r.ID {
				return nil
			}
		}
		rs.finished = append(rs.finished, r.ID)
	}
	return nil
}

// noteID keeps nextID above every replayed run ID so recovered and new
// runs never collide.
func (rs *replayState) noteID(id string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "r"))
	if err == nil && n > rs.nextID {
		rs.nextID = n
	}
}

// restore installs the replayed image into a freshly built manager
// (called before its workers start) and returns the runs that must be
// re-enqueued: everything the previous incarnation accepted but did not
// finish. Queued and running runs alike restart from scratch — the
// at-least-once contract after a crash.
func (m *Manager) restore(rs *replayState) []*run {
	var pending []*run
	for _, id := range rs.order {
		st := rs.runs[id]
		r := &run{
			id:        st.ID,
			spec:      st.Spec,
			submitted: st.SubmittedAt,
			// Attribution tolerates tenants that left the config since
			// the record was written (and maps "" — every pre-tenant
			// journal — to the anonymous tenant), so replay of old WALs
			// is always possible.
			tn:   m.tenants.Attribution(st.Tenant),
			cost: m.tenants.Cost().EstimateRunSeconds(specTicks(st.Spec)),
		}
		if st.Trace != "" {
			// The trace ID survives the crash for status linkage; the
			// submit-time span does not, so a re-executed run records no
			// further spans under it.
			if id, err := telemetry.ParseTraceID(st.Trace); err == nil {
				r.trace = id
			}
		}
		if st.State.Terminal() {
			r.state = st.State
			r.errMsg = st.Error
			r.summary = st.Result
			if st.StartedAt != nil {
				r.started = *st.StartedAt
			}
			if st.FinishedAt != nil {
				r.finished = *st.FinishedAt
			}
			r.cancel = func() {}
			r.done = make(chan struct{})
			close(r.done)
		} else {
			r.state = StateQueued
			r.tel = newRunTelemetry(m.cfg)
			r.flight = flight.New(m.cfg.FlightCapacity)
			r.flight.SetSink(m.flightSink(r.id, tenantName(r.tn)))
			r.ctx, r.cancel = newRunContext()
			r.done = make(chan struct{})
			pending = append(pending, r)
		}
		m.runs[r.id] = r
		m.order = append(m.order, r.id)
	}
	// Rebuild the finish-order list from IDs that still resolve, then
	// re-apply the retention cap (it may have shrunk across the restart).
	for _, id := range rs.finished {
		if r, ok := m.runs[id]; ok && r.state.Terminal() {
			m.finished = append(m.finished, id)
		}
	}
	m.nextID = rs.nextID
	m.evictLocked()
	return pending
}

// snapshotLocked captures the registry for a compaction record. Callers
// hold m.mu.
func (m *Manager) snapshotLocked() managerSnapshot {
	snap := managerSnapshot{
		NextID:   m.nextID,
		Finished: append([]string(nil), m.finished...),
	}
	for _, id := range m.order {
		if r, ok := m.runs[id]; ok {
			snap.Runs = append(snap.Runs, r.status())
		}
	}
	return snap
}

// maybeCompactLocked snapshots the registry once enough delta records
// have accumulated since the last compaction. Callers hold m.mu.
func (m *Manager) maybeCompactLocked() {
	if m.jn == nil || m.jn.Records() < int64(m.cfg.CompactEvery) {
		return
	}
	if err := m.jn.Compact(recSnapshot, m.snapshotLocked()); err != nil {
		m.logf("server: journal compaction failed: %v", err)
	}
}

// journalLocked appends a delta record, downgrading failures to a log
// line — an unjournaled transition costs at-least-once re-execution
// after a crash, not correctness. Callers hold m.mu.
func (m *Manager) journalLocked(typ string, v any) {
	if m.jn == nil {
		return
	}
	if err := m.jn.Append(typ, v); err != nil {
		m.logf("server: journal append %s failed: %v", typ, err)
	}
}

func dataDirError(err error) error {
	return fmt.Errorf("server: open data dir: %w", err)
}
