package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/workload"
)

// MaxSpecBytes bounds a submitted run spec's JSON body.
const MaxSpecBytes = 1 << 20

// Meta describes the service's vocabulary — the valid names a spec may
// use. Served at GET /api/v1/meta so clients can print helpful errors
// without hardcoding the lists.
type Meta struct {
	LCWorkloads []string `json:"lc_workloads"`
	BEWorkloads []string `json:"be_workloads"`
	Policies    []string `json:"policies"`
	LoadKinds   []string `json:"load_kinds"`
	Workers     int      `json:"workers"`
}

// NewHandler builds the control-plane HTTP API around a manager:
//
//	POST   /api/v1/runs             submit a RunSpec (202; 400 invalid, 429 queue full, 503 draining)
//	GET    /api/v1/runs             list retained runs
//	GET    /api/v1/runs/{id}        one run's status and result summary
//	GET    /api/v1/runs/{id}/events the run's private trace as JSONL
//	DELETE /api/v1/runs/{id}        cancel a queued or running run
//	GET    /api/v1/status           node load signal (queue depth, active runs, store occupancy)
//	GET    /api/v1/meta             valid workload/policy/load names
//
// tel is the daemon-level telemetry sink; its handler is mounted at
// /metrics, /trace, and /debug/pprof/ (nil serves empty snapshots).
func NewHandler(m *Manager, tel *telemetry.Telemetry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		spec, err := sim.ParseRunSpec(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})

	mux.HandleFunc("GET /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		tr, err := m.Events(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := tr.WriteJSONL(w); err != nil {
			// Headers are gone; nothing useful left to send.
			return
		}
	})

	mux.HandleFunc("DELETE /api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("GET /api/v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Meta{
			LCWorkloads: workload.LCNames(),
			BEWorkloads: workload.BENames(),
			Policies:    sim.PolicyNames(),
			LoadKinds:   sim.LoadKinds(),
			Workers:     m.Workers(),
		})
	})

	// Daemon-level observability: the existing telemetry handler serves
	// the debug surface (/metrics and /trace snapshots, pprof under
	// /debug/pprof/).
	th := tel.Handler()
	mux.Handle("/metrics", th)
	mux.Handle("/trace", th)
	mux.Handle("/debug/", th)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, errors.New("no such endpoint"))
			return
		}
		fmt.Fprint(w, "mtatd control plane\n\n"+
			"POST   /api/v1/runs\n"+
			"GET    /api/v1/runs\n"+
			"GET    /api/v1/runs/{id}\n"+
			"GET    /api/v1/runs/{id}/events\n"+
			"DELETE /api/v1/runs/{id}\n"+
			"GET    /api/v1/status\n"+
			"GET    /api/v1/meta\n"+
			"GET    /metrics\n"+
			"GET    /trace\n"+
			"GET    /debug/pprof/\n")
	})

	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := "unknown error"
	if err != nil {
		msg = strings.TrimSpace(err.Error())
	}
	writeJSON(w, code, apiError{Error: msg})
}
