package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/tenant"
	"github.com/tieredmem/mtat/internal/workload"
)

// MaxSpecBytes bounds a submitted run spec's JSON body.
const MaxSpecBytes = 1 << 20

// Meta describes the service's vocabulary — the valid names a spec may
// use. Served at GET /api/v1/meta so clients can print helpful errors
// without hardcoding the lists.
type Meta struct {
	LCWorkloads []string `json:"lc_workloads"`
	BEWorkloads []string `json:"be_workloads"`
	Policies    []string `json:"policies"`
	LoadKinds   []string `json:"load_kinds"`
	Workers     int      `json:"workers"`
}

// HandlerConfig tunes the optional surfaces of the control-plane API.
type HandlerConfig struct {
	// Pprof mounts the Go profiling endpoints under /debug/pprof/. The
	// daemons keep it off unless launched with -pprof; NewHandler turns
	// it on for embedded/test use.
	Pprof bool
}

// NewHandler is NewHandlerWith with every optional surface enabled.
func NewHandler(m *Manager, tel *telemetry.Telemetry) http.Handler {
	return NewHandlerWith(m, tel, HandlerConfig{Pprof: true})
}

// NewHandlerWith builds the control-plane HTTP API around a manager:
//
//	POST   /api/v1/runs             submit a RunSpec (202; 400 invalid, 429 queue full, 503 draining)
//	GET    /api/v1/runs             list retained runs
//	GET    /api/v1/runs/{id}        one run's status and result summary
//	GET    /api/v1/runs/{id}/events the run's private trace as JSONL — or, with
//	                                Accept: text/event-stream, a live SSE feed of
//	                                lifecycle/flight/stats events (Last-Event-ID resume)
//	GET    /api/v1/events           SSE firehose of every topic, tenant-scoped
//	GET    /api/v1/runs/{id}/flight the run's flight-recorder dump (JSON; ?after=<seq>
//	                                returns only events newer than the cursor)
//	DELETE /api/v1/runs/{id}        cancel a queued or running run
//	GET    /api/v1/status           node load signal (queue depth, active runs, store occupancy)
//	GET    /api/v1/meta             valid workload/policy/load names
//	GET    /api/v1/traces           retained distributed traces (summaries, NDJSON)
//	GET    /api/v1/traces/{id}      one trace's spans as JSONL
//	GET    /healthz                 liveness probe
//	GET    /readyz                  readiness probe (replay done, queue has headroom)
//
// tel is the daemon-level telemetry sink; its handler is mounted at
// /metrics and /trace (nil serves empty snapshots) — plus /debug/pprof/
// when cfg.Pprof is set — and every route is wrapped in
// telemetry.Middleware for request metrics, server spans, and structured
// logs.
func NewHandlerWith(m *Manager, tel *telemetry.Telemetry, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		spec, err := sim.ParseRunSpec(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := m.SubmitCtx(r.Context(), spec)
		var qe *tenant.QuotaError
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.As(err, &qe):
			// Per-tenant admission rejection: tell the client when its
			// rate bucket refills (or a generic hint for quota/cost).
			w.Header().Set("Retry-After", tenant.RetryAfterSeconds(qe.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})

	mux.HandleFunc("GET /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// Content negotiation keeps one URL for both shapes: an SSE
		// Accept header gets the live event stream (lifecycle, flight,
		// stats deltas); everything else gets the historical JSONL
		// trace dump that `mtatctl logs` and scripted consumers expect.
		if wantsSSE(r) {
			if _, err := m.Get(id); err != nil {
				writeError(w, http.StatusNotFound, err)
				return
			}
			telemetry.ServeSSE(w, r, m.Bus(), runTopic(id), nil)
			m.SyncBusMetrics()
			return
		}
		tr, err := m.Events(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := tr.WriteJSONL(w); err != nil {
			// Headers are gone; nothing useful left to send.
			return
		}
	})

	// Firehose: every topic on this daemon, scoped to the caller's
	// tenant unless it is an admin (or the daemon runs permissive).
	mux.HandleFunc("GET /api/v1/events", func(w http.ResponseWriter, r *http.Request) {
		telemetry.ServeSSE(w, r, m.Bus(), "", tenantEventFilter(m, r))
		m.SyncBusMetrics()
	})

	mux.HandleFunc("GET /api/v1/runs/{id}/flight", func(w http.ResponseWriter, r *http.Request) {
		fl, err := m.Flight(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		m.SyncFlightDrops(r.PathValue("id"))
		w.Header().Set("Content-Type", "application/json")
		// The ?after cursor lets pollers fetch only events newer than
		// the last sequence number they saw instead of the whole ring.
		if v := r.URL.Query().Get("after"); v != "" {
			after, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad after cursor %q: %w", v, err))
				return
			}
			_ = fl.WriteJSONAfter(w, after)
			return
		}
		_ = fl.WriteJSON(w)
	})

	mux.HandleFunc("DELETE /api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("GET /api/v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Meta{
			LCWorkloads: workload.LCNames(),
			BEWorkloads: workload.BENames(),
			Policies:    sim.PolicyNames(),
			LoadKinds:   sim.LoadKinds(),
			Workers:     m.Workers(),
		})
	})

	// Distributed-trace surface: the spans this daemon retains, listed
	// and fetched per trace (mtatctl trace merges them across daemons).
	mux.HandleFunc("GET /api/v1/traces", tel.ServeTraceList)
	mux.HandleFunc("GET /api/v1/traces/{id}", tel.ServeTrace)

	// Tenancy surface: usage snapshots for every tenant, and the admin
	// hot-reload endpoint (live config push without a restart; SIGHUP on
	// the daemon re-reads the -tenants file through the same path).
	mux.HandleFunc("GET /api/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Tenants().List())
	})
	mux.HandleFunc("POST /api/v1/config/tenants", func(w http.ResponseWriter, r *http.Request) {
		t := tenant.FromContext(r.Context())
		if t == nil || !t.IsAdmin() {
			writeError(w, http.StatusForbidden, errors.New("tenant config reload requires an admin tenant"))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		cfg, err := tenant.ParseConfig(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.Tenants().Reload(cfg); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m.TenantsReloaded()
		writeJSON(w, http.StatusOK, tenant.ReloadResult{
			Tenants:    m.Tenants().Count(),
			Generation: m.Tenants().Generation(),
		})
	})

	// Probes: /healthz is pure liveness; /readyz additionally demands
	// journal replay done (implied by the manager existing) and admission
	// headroom, so orchestration and CI gate traffic on it.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := m.Ready(); !ok {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})

	// Daemon-level observability: the existing telemetry handler serves
	// the debug surface (/metrics and /trace snapshots, pprof under
	// /debug/pprof/ when enabled).
	th := tel.Handler()
	mux.Handle("/metrics", th)
	mux.Handle("/trace", th)
	if cfg.Pprof {
		mux.Handle("/debug/", th)
	}

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, errors.New("no such endpoint"))
			return
		}
		fmt.Fprint(w, "mtatd control plane\n\n"+
			"POST   /api/v1/runs\n"+
			"GET    /api/v1/runs\n"+
			"GET    /api/v1/runs/{id}\n"+
			"GET    /api/v1/runs/{id}/events  (Accept: text/event-stream for live SSE)\n"+
			"GET    /api/v1/runs/{id}/flight  (?after=<seq> cursor)\n"+
			"GET    /api/v1/events  (SSE firehose)\n"+
			"DELETE /api/v1/runs/{id}\n"+
			"GET    /api/v1/status\n"+
			"GET    /api/v1/meta\n"+
			"GET    /api/v1/traces\n"+
			"GET    /api/v1/traces/{id}\n"+
			"GET    /api/v1/tenants\n"+
			"POST   /api/v1/config/tenants  (admin)\n"+
			"GET    /healthz\n"+
			"GET    /readyz\n"+
			"GET    /metrics  (?format=prom for Prometheus text)\n"+
			"GET    /trace\n"+
			"GET    /debug/pprof/  (with -pprof)\n")
	})

	// Every route passes through the shared instrumentation (per-route
	// latency histograms, status-class counters, the in-flight gauge, a
	// server span per request joined to the caller's trace, one
	// structured request log line) and then tenant authentication: the
	// telemetry middleware runs outermost so 401s are metered and
	// logged like any other response.
	return telemetry.Middleware(tel, slog.Default())(tenant.Middleware(m.Tenants(), mux))
}

// wantsSSE reports whether the request negotiated a live event stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), telemetry.SSEContentType)
}

// tenantEventFilter scopes the firehose to the caller's own events: a
// named non-admin tenant sees only its own topics; admins — and every
// caller on a permissive daemon (no tenant config) — see everything.
func tenantEventFilter(m *Manager, r *http.Request) func(telemetry.BusEvent) bool {
	t := tenant.FromContext(r.Context())
	if t == nil || t.IsAdmin() || m.Tenants().Count() == 0 {
		return nil
	}
	name := tenantName(t)
	return func(ev telemetry.BusEvent) bool { return ev.Tenant == name }
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	msg := "unknown error"
	if err != nil {
		msg = strings.TrimSpace(err.Error())
	}
	writeJSON(w, code, apiError{Error: msg})
}
