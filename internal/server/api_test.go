package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/telemetry"
)

func newTestAPI(t *testing.T, cfg Config) (*Client, *Manager) {
	t.Helper()
	tel := telemetry.New()
	cfg.Telemetry = tel
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m, tel))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
		srv.Close()
	})
	return NewClient(srv.URL), m
}

func TestAPISubmitWaitEvents(t *testing.T) {
	c, _ := newTestAPI(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, shortSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("no run ID in %+v", st)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil || final.Result.Ticks != 100 {
		t.Fatalf("bad final status: %+v", final)
	}

	var buf bytes.Buffer
	if err := c.Events(ctx, st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type":"run.start"`) ||
		!strings.Contains(buf.String(), `"type":"run.end"`) {
		t.Errorf("events stream missing run markers:\n%.200s", buf.String())
	}

	runs, err := c.Runs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != st.ID {
		t.Errorf("Runs() = %+v", runs)
	}

	meta, err := c.Meta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Policies) == 0 || len(meta.LCWorkloads) == 0 || meta.Workers != 2 {
		t.Errorf("bad meta: %+v", meta)
	}
}

func TestAPIValidationAndNotFound(t *testing.T) {
	c, _ := newTestAPI(t, Config{Workers: 1})
	ctx := context.Background()

	bad := shortSpec(1)
	bad.Policy = "lru"
	_, err := c.Submit(ctx, bad)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy submit: %v", err)
	}
	if !strings.Contains(apiErr.Message, "memtis") {
		t.Errorf("error does not list valid policies: %q", apiErr.Message)
	}

	for _, probe := range []func() error{
		func() error { _, err := c.Run(ctx, "r999999"); return err },
		func() error { _, err := c.Cancel(ctx, "r999999"); return err },
		func() error { return c.Events(ctx, "r999999", &bytes.Buffer{}) },
	} {
		err := probe()
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.StatusCode != http.StatusNotFound {
			t.Errorf("unknown run probe: %v", err)
		}
	}
}

func TestAPIQueueFull429(t *testing.T) {
	c, m := newTestAPI(t, Config{Workers: 1, QueueCap: 1})
	ctx := context.Background()

	running, err := c.Submit(ctx, longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := c.Submit(ctx, longSpec(2))
	if err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	_, err = c.Submit(ctx, longSpec(3))
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %v, want HTTP 429", err)
	}

	// Cancel both so the deferred shutdown drains fast; the running one
	// round-trips through DELETE.
	st, err := c.Cancel(ctx, queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: %+v %v", st, err)
	}
	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, running.ID, 10*time.Millisecond)
	if err != nil || final.State != StateCancelled {
		t.Fatalf("cancelled run final = %+v %v", final, err)
	}
}

func TestAPIDebugSurface(t *testing.T) {
	c, _ := newTestAPI(t, Config{Workers: 1})
	for _, path := range []string{"/metrics", "/trace", "/debug/pprof/", "/api/v1/meta", "/"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestAPIShutdown503(t *testing.T) {
	c, m := newTestAPI(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, shortSpec(1))
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: %v, want HTTP 503", err)
	}
}

func TestAPIFlightDump(t *testing.T) {
	c, _ := newTestAPI(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, shortSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Flight(ctx, st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	var dump flight.Dump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%.200s", err, buf.String())
	}
	if dump.Capacity != DefaultFlightCapacity {
		t.Errorf("flight capacity %d, want %d", dump.Capacity, DefaultFlightCapacity)
	}
	kinds := map[string]bool{}
	for _, ev := range dump.Events {
		kinds[ev.Kind] = true
	}
	// run.end is always retained; run.start may have been overwritten on
	// long runs but must survive a 100-tick one.
	if !kinds[flight.KindRunStart] || !kinds[flight.KindRunEnd] {
		t.Errorf("flight dump missing run markers, kinds seen: %v", kinds)
	}

	err = c.Flight(ctx, "r999999", &bytes.Buffer{})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run flight: %v, want HTTP 404", err)
	}
}

// TestAPIPprofGating checks the HandlerConfig switch: the profiling
// surface must 404 unless explicitly enabled (mtatd -pprof), while
// NewHandler keeps it on for embedded/test use.
func TestAPIPprofGating(t *testing.T) {
	tel := telemetry.New()
	m := newTestManager(t, Config{Workers: 1, Telemetry: tel})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()

	gated := httptest.NewServer(NewHandlerWith(m, tel, HandlerConfig{Pprof: false}))
	defer gated.Close()
	open := httptest.NewServer(NewHandlerWith(m, tel, HandlerConfig{Pprof: true}))
	defer open.Close()

	for srvURL, want := range map[string]int{
		gated.URL: http.StatusNotFound,
		open.URL:  http.StatusOK,
	} {
		resp, err := http.Get(srvURL + "/debug/pprof/heap")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s/debug/pprof/heap = %d, want %d", srvURL, resp.StatusCode, want)
		}
		// The API itself must work in both modes.
		resp, err = http.Get(srvURL + "/api/v1/meta")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s/api/v1/meta = %d", srvURL, resp.StatusCode)
		}
	}

	// Client.Profile end to end against the open server: the heap profile
	// must come back non-empty (a gzip'd protobuf, starting 0x1f 0x8b).
	var prof bytes.Buffer
	if err := NewClient(open.URL).Profile(context.Background(), "heap", 0, &prof); err != nil {
		t.Fatal(err)
	}
	if prof.Len() == 0 {
		t.Fatal("empty heap profile")
	}
}
