package server

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitDurableRidesOutOutage: the daemon answers 503 (then drops the
// connection entirely) for a while before coming back with a terminal
// status — WaitDurable must absorb the whole outage and return it.
func TestWaitDurableRidesOutOutage(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		switch {
		case n <= 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		case n <= 4:
			// Kill the TCP connection mid-response: a transport error,
			// like polling a daemon that just died.
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, err := hj.Hijack()
				if err == nil {
					conn.Close()
					return
				}
			}
			http.Error(w, "boom", http.StatusBadGateway)
		default:
			json.NewEncoder(w).Encode(RunStatus{ID: "r000001", State: StateDone})
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.WaitDurable(ctx, "r000001", 10*time.Millisecond, 10*time.Second)
	if err != nil {
		t.Fatalf("WaitDurable: %v (after %d calls)", err, calls.Load())
	}
	if st.State != StateDone || st.ID != "r000001" {
		t.Fatalf("status = %+v", st)
	}
	if calls.Load() < 5 {
		t.Errorf("server saw %d calls, want >= 5 (retries through the outage)", calls.Load())
	}
}

// TestWaitDurableOutageBudget: a daemon that never comes back exhausts
// maxOutage and fails instead of spinning forever.
func TestWaitDurableOutageBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err = c.WaitDurable(ctx, "r000001", 5*time.Millisecond, 100*time.Millisecond)
	if err == nil {
		t.Fatal("WaitDurable against a dead daemon succeeded")
	}
	if ctx.Err() != nil {
		t.Fatalf("outage budget never fired; context expired instead: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("gave up after %s, before the 100ms outage budget", elapsed)
	}
}

// TestWaitDurableBackpressureIsNotOutage: a daemon answering 429 is
// alive, so quota rejections must never burn the outage window. The
// server here rejects with 429 + Retry-After for well past the (tiny)
// maxOutage before finally answering — the old behavior (429 charged as
// outage) fails this immediately.
func TestWaitDurableBackpressureIsNotOutage(t *testing.T) {
	const rejections = 3
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= rejections {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"tenant over quota"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(RunStatus{ID: "r000001", State: StateDone})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// maxOutage of 50ms while each 429 asks for a 1s pause: the total
	// backpressure span (~3s) dwarfs the outage budget, so success proves
	// 429s reset the clock rather than accruing against it.
	start := time.Now()
	st, err := c.WaitDurable(ctx, "r000001", 10*time.Millisecond, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitDurable treated backpressure as an outage: %v (after %d calls)", err, calls.Load())
	}
	if st.State != StateDone {
		t.Fatalf("status = %+v", st)
	}
	// Retry-After must actually be honored: 8 rejections × 1s floor.
	if elapsed := time.Since(start); elapsed < rejections*time.Second {
		t.Errorf("finished in %s; Retry-After of 1s × %d rejections was not honored", elapsed, rejections)
	}
}

// TestWaitDurableDefinitiveErrors: a 404 is not an outage — the run is
// gone and retrying cannot bring it back.
func TestWaitDurableDefinitiveErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"run not found"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx := context.Background()
	_, err := c.WaitDurable(ctx, "r999999", 5*time.Millisecond, time.Minute)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("404 was retried %d times, want exactly 1 call", calls.Load())
	}
}
