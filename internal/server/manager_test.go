package server

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/sim"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// newTestManager fails the test instead of returning NewManager's error
// (only reachable with a DataDir).
func newTestManager(t testing.TB, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// shortSpec is a scenario that finishes in well under a second: 1/16
// scale, constant load, 10 simulated seconds.
func shortSpec(seed int64) sim.RunSpec {
	return sim.RunSpec{
		LC:              "redis",
		BEs:             []string{"sssp"},
		Policy:          "memtis",
		Load:            &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 10},
		Scale:           16,
		Seed:            seed,
		DurationSeconds: 10,
	}
}

// longSpec is a scenario that runs for minutes of wall clock — used to
// exercise cancellation and backpressure. The fine tick makes each
// simulated second expensive without changing the model.
func longSpec(seed int64) sim.RunSpec {
	s := shortSpec(seed)
	s.Load = &sim.LoadSpec{Kind: "constant", Frac: 0.5, DurationSeconds: 3600}
	s.DurationSeconds = 3600
	s.TickSeconds = 0.01
	return s
}

func waitState(t *testing.T, m *Manager, id string, want State) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("run %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return RunStatus{}
}

func shutdownOrFail(t *testing.T, m *Manager, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestSubmitComplete(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	defer shutdownOrFail(t, m, 30*time.Second)

	st, err := m.Submit(shortSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("bad submit status: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := m.WaitRun(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("run %s ended %s (err %q)", st.ID, final.State, final.Error)
	}
	if final.Result == nil || final.Result.Ticks != 100 {
		t.Fatalf("bad result summary: %+v", final.Result)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", final)
	}
	res, err := m.Result(st.ID)
	if err != nil || res == nil || res.Ticks != 100 {
		t.Fatalf("full result unavailable: %v %v", res, err)
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer shutdownOrFail(t, m, 10*time.Second)
	spec := shortSpec(1)
	spec.LC = "postgres"
	if _, err := m.Submit(spec); err == nil || !strings.Contains(err.Error(), "redis") {
		t.Fatalf("invalid spec error should list names, got %v", err)
	}
}

// TestConcurrentRuns drives the acceptance bar: >= 8 scenario runs in
// flight at once, each with isolated per-run telemetry.
func TestConcurrentRuns(t *testing.T) {
	const n = 8
	m := newTestManager(t, Config{Workers: n, QueueCap: n})
	defer shutdownOrFail(t, m, 60*time.Second)

	ids := make([]string, n)
	for i := 0; i < n; i++ {
		spec := shortSpec(int64(i + 1))
		// Distinct durations give each run a distinct tick count, so a
		// telemetry bleed across tenants is detectable below.
		spec.Load.DurationSeconds = float64(10 + i)
		spec.DurationSeconds = float64(10 + i)
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, id := range ids {
		st, err := m.WaitRun(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("run %s ended %s (err %q)", id, st.State, st.Error)
		}
		wantTicks := (10 + i) * 10
		if st.Result.Ticks != wantTicks {
			t.Errorf("run %s ticks = %d, want %d", id, st.Result.Ticks, wantTicks)
		}
		// Per-run isolation: the run's private trace and metrics reflect
		// exactly its own ticks.
		tr, err := m.Events(id)
		if err != nil {
			t.Fatalf("events %s: %v", id, err)
		}
		events := tr.Events()
		if len(events) == 0 || events[0].Type != telemetry.EvRunStart {
			t.Errorf("run %s trace missing run.start (%d events)", id, len(events))
			continue
		}
		last := events[len(events)-1]
		ticks, ok := last.Attr("ticks")
		if last.Type != telemetry.EvRunEnd || !ok || int(ticks) != wantTicks {
			t.Errorf("run %s trace end = %s ticks %g, want run.end with %d — telemetry bled across runs",
				id, last.Type, ticks, wantTicks)
		}
	}
	if got := len(m.List()); got != n {
		t.Errorf("List() = %d runs, want %d", got, n)
	}
}

func TestCancelRunning(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer shutdownOrFail(t, m, 30*time.Second)

	st, err := m.Submit(longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateRunning)
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := m.WaitRun(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("cancelled run ended %s", final.State)
	}
	if final.Result != nil {
		t.Fatal("cancelled run kept a result")
	}
}

func TestCancelQueued(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCap: 4})
	defer shutdownOrFail(t, m, 30*time.Second)

	blocker, err := m.Submit(longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(shortSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued cancel state = %s", st.State)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel("r999999"); err == nil {
		t.Fatal("unknown run cancelled")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCap: 1})
	defer shutdownOrFail(t, m, 30*time.Second)

	running, err := m.Submit(longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit(longSpec(2))
	if err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	if _, err := m.Submit(longSpec(3)); err != ErrQueueFull {
		t.Fatalf("overflow submit returned %v, want ErrQueueFull", err)
	}
	// Unblock the drain in the deferred shutdown.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDrains(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, QueueCap: 8})
	ids := make([]string, 4)
	for i := range ids {
		st, err := m.Submit(shortSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("run %s drained to %s (err %q), want done", id, st.State, st.Error)
		}
	}
	if _, err := m.Submit(shortSpec(9)); err != ErrShuttingDown {
		t.Errorf("post-shutdown submit returned %v, want ErrShuttingDown", err)
	}
	// Idempotent: a second shutdown returns immediately.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsRuns(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCap: 4})
	running, err := m.Submit(longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(longSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCancelled {
			t.Errorf("run %s = %s after deadline shutdown, want cancelled", id, st.State)
		}
	}
}

// TestShutdownLeavesNoGoroutines pins the acceptance criterion that
// cancel and graceful shutdown leave no running goroutines behind.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	m := newTestManager(t, Config{Workers: 4, QueueCap: 8})
	st, err := m.Submit(shortSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	long, err := m.Submit(longSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.WaitRun(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	shutdownOrFail(t, m, 30*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func TestResultStoreEviction(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCap: 8, MaxRuns: 2})
	defer shutdownOrFail(t, m, 60*time.Second)

	ids := make([]string, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := range ids {
		st, err := m.Submit(shortSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		if _, err := m.WaitRun(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Get(ids[0]); err == nil {
		t.Error("oldest finished run not evicted")
	}
	for _, id := range ids[1:] {
		if _, err := m.Get(id); err != nil {
			t.Errorf("recent run %s evicted: %v", id, err)
		}
	}
	if got := len(m.List()); got != 2 {
		t.Errorf("List() = %d, want 2", got)
	}
}

func TestManagerMetrics(t *testing.T) {
	tel := telemetry.New()
	m := newTestManager(t, Config{Workers: 1, Telemetry: tel})
	defer shutdownOrFail(t, m, 30*time.Second)

	st, err := m.Submit(shortSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.WaitRun(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	reg := tel.Metrics()
	if got := reg.Counter("server_runs_submitted_total").Value(); got != 1 {
		t.Errorf("submitted counter = %d", got)
	}
	if got := reg.Counter("server_runs_done_total").Value(); got != 1 {
		t.Errorf("done counter = %d", got)
	}
}
