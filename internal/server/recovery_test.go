package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/journal"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// seedJournal writes raw lifecycle records into dir — the journal a
// crashed daemon leaves behind (no finished records for unfinished
// work, no clean close).
func seedJournal(t *testing.T, dir string, write func(j *journal.Journal)) {
	t.Helper()
	j, _, err := journal.Open(dir, journal.Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	write(j)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func mustAppend(t *testing.T, j *journal.Journal, typ string, v any) {
	t.Helper()
	if err := j.Append(typ, v); err != nil {
		t.Fatalf("Append(%s): %v", typ, err)
	}
}

// TestRecoveryReenqueuesUnfinished: a journal holding one queued and one
// in-flight run (submitted, one also started, neither finished — what a
// SIGKILL mid-run leaves) must yield a manager that re-runs both to
// completion.
func TestRecoveryReenqueuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	seedJournal(t, dir, func(j *journal.Journal) {
		mustAppend(t, j, recRunSubmitted, runSubmittedRec{ID: "r000001", Spec: shortSpec(1), SubmittedAt: now})
		mustAppend(t, j, recRunSubmitted, runSubmittedRec{ID: "r000002", Spec: shortSpec(2), SubmittedAt: now})
		mustAppend(t, j, recRunStarted, runStartedRec{ID: "r000002", StartedAt: now})
	})

	m := newTestManager(t, Config{Workers: 2, DataDir: dir})
	if got := m.Stats().RecoveredRuns; got != 2 {
		t.Fatalf("RecoveredRuns = %d, want 2", got)
	}
	for _, id := range []string{"r000001", "r000002"} {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := m.WaitRun(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("WaitRun(%s): %v", id, err)
		}
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("recovered run %s = %s (result %v), want done with result", id, st.State, st.Result)
		}
	}
	shutdownOrFail(t, m, 30*time.Second)

	// Third incarnation: everything is terminal now, nothing re-enqueues,
	// and the journaled summaries survive.
	m2 := newTestManager(t, Config{Workers: 1, DataDir: dir})
	defer shutdownOrFail(t, m2, 30*time.Second)
	if got := m2.Stats().RecoveredRuns; got != 0 {
		t.Fatalf("second recovery re-enqueued %d runs, want 0", got)
	}
	st, err := m2.Get("r000002")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.Ticks == 0 {
		t.Fatalf("post-recovery status = %s result %+v", st.State, st.Result)
	}
	// The private trace died with the old process; the events endpoint
	// must degrade to an empty stream, not a panic.
	tr, err := m2.Events("r000002")
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("recovered run has %d trace events, want 0", n)
	}
}

// TestRecoveryPreservesFinished: a run finished before the restart keeps
// its terminal state and result summary across incarnations.
func TestRecoveryPreservesFinished(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, DataDir: dir})
	st, err := m.Submit(shortSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	final, err := m.WaitRun(ctx, st.ID)
	cancel()
	if err != nil || final.State != StateDone {
		t.Fatalf("run: %v state %s", err, final.State)
	}
	shutdownOrFail(t, m, 30*time.Second)

	m2 := newTestManager(t, Config{Workers: 1, DataDir: dir})
	defer shutdownOrFail(t, m2, 30*time.Second)
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("state = %s, want done", got.State)
	}
	if got.Result == nil || got.Result.Ticks != final.Result.Ticks ||
		got.Result.Policy != final.Result.Policy {
		t.Fatalf("recovered result %+v != original %+v", got.Result, final.Result)
	}
	if got.FinishedAt == nil || !got.FinishedAt.Equal(*final.FinishedAt) {
		t.Fatalf("recovered FinishedAt %v != %v", got.FinishedAt, final.FinishedAt)
	}
}

// TestRecoveryTornTail: garbage appended to the journal (the torn tail a
// crash mid-append leaves) must not prevent recovery of the intact
// prefix.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	seedJournal(t, dir, func(j *journal.Journal) {
		mustAppend(t, j, recRunSubmitted, runSubmittedRec{ID: "r000001", Spec: shortSpec(1), SubmittedAt: now})
	})
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m := newTestManager(t, Config{Workers: 1, DataDir: dir})
	defer shutdownOrFail(t, m, 60*time.Second)
	if got := m.Stats().RecoveredRuns; got != 1 {
		t.Fatalf("RecoveredRuns = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.WaitRun(ctx, "r000001")
	if err != nil || st.State != StateDone {
		t.Fatalf("recovered run after torn tail: %v state %s", err, st.State)
	}
}

// TestRecoveryNextIDMonotonic: IDs issued after recovery must not
// collide with replayed ones.
func TestRecoveryNextIDMonotonic(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	seedJournal(t, dir, func(j *journal.Journal) {
		mustAppend(t, j, recRunSubmitted, runSubmittedRec{ID: "r000005", Spec: shortSpec(1), SubmittedAt: now})
	})
	m := newTestManager(t, Config{Workers: 1, DataDir: dir})
	defer shutdownOrFail(t, m, 60*time.Second)
	st, err := m.Submit(shortSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "r000006" {
		t.Fatalf("post-recovery ID = %s, want r000006", st.ID)
	}
}

// TestRecoveryBacklogBeyondQueueCap: a recovered backlog larger than the
// admission cap must still be fully enqueued and executed.
func TestRecoveryBacklogBeyondQueueCap(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	const backlog = 6
	seedJournal(t, dir, func(j *journal.Journal) {
		for i := 1; i <= backlog; i++ {
			mustAppend(t, j, recRunSubmitted, runSubmittedRec{
				ID: ids(i), Spec: shortSpec(int64(i)), SubmittedAt: now,
			})
		}
	})
	m := newTestManager(t, Config{Workers: 2, QueueCap: 2, DataDir: dir})
	defer shutdownOrFail(t, m, 60*time.Second)
	if got := m.Stats().RecoveredRuns; got != backlog {
		t.Fatalf("RecoveredRuns = %d, want %d", got, backlog)
	}
	// New submissions are rejected while the backlog holds the queue
	// over its admission cap.
	if _, err := m.Submit(shortSpec(99)); err == nil {
		t.Log("note: backlog drained before over-cap submission; continuing")
	}
	for i := 1; i <= backlog; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := m.WaitRun(ctx, ids(i))
		cancel()
		if err != nil || st.State != StateDone {
			t.Fatalf("backlog run %s: %v state %s", ids(i), err, st.State)
		}
	}
}

// TestEvictionAccounted: evicting beyond MaxRuns bumps
// server_results_evicted_total, and a restart converges to the same
// retained set.
func TestEvictionAccounted(t *testing.T) {
	dir := t.TempDir()
	tel := telemetry.New()
	var logged []string
	m := newTestManager(t, Config{
		Workers: 1, MaxRuns: 2, DataDir: dir, Telemetry: tel,
		Logf: func(format string, args ...any) {
			logged = append(logged, format)
		},
	})
	const total = 5
	var idList []string
	for i := 0; i < total; i++ {
		st, err := m.Submit(shortSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		idList = append(idList, st.ID)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if _, err := m.WaitRun(ctx, st.ID); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	evicted := tel.Metrics().Counter("server_results_evicted_total").Value()
	if evicted != total-2 {
		t.Fatalf("evicted counter = %d, want %d", evicted, total-2)
	}
	if int(evicted)+len(m.List()) != total {
		t.Fatalf("retained %d + evicted %d != submitted %d", len(m.List()), evicted, total)
	}
	found := false
	for _, l := range logged {
		if l == "server: result store full (max %d): evicted oldest finished run %s" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no eviction log line emitted (got %q)", logged)
	}
	shutdownOrFail(t, m, 30*time.Second)

	m2 := newTestManager(t, Config{Workers: 1, MaxRuns: 2, DataDir: dir})
	defer shutdownOrFail(t, m2, 30*time.Second)
	runs := m2.List()
	if len(runs) != 2 {
		t.Fatalf("recovered %d retained runs, want 2", len(runs))
	}
	// The newest two survive.
	if runs[0].ID != idList[total-2] || runs[1].ID != idList[total-1] {
		t.Fatalf("retained %s,%s want %s,%s", runs[0].ID, runs[1].ID, idList[total-2], idList[total-1])
	}
}

// TestCompactionRoundTrip: aggressive compaction must not change what a
// restart recovers.
func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, DataDir: dir, CompactEvery: 3})
	var idList []string
	for i := 0; i < 4; i++ {
		st, err := m.Submit(shortSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		idList = append(idList, st.ID)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if _, err := m.WaitRun(ctx, st.ID); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	shutdownOrFail(t, m, 30*time.Second)

	m2 := newTestManager(t, Config{Workers: 1, DataDir: dir})
	defer shutdownOrFail(t, m2, 30*time.Second)
	if got := m2.Stats().RecoveredRuns; got != 0 {
		t.Fatalf("RecoveredRuns = %d, want 0", got)
	}
	runs := m2.List()
	if len(runs) != len(idList) {
		t.Fatalf("recovered %d runs, want %d", len(runs), len(idList))
	}
	for i, st := range runs {
		if st.ID != idList[i] || st.State != StateDone || st.Result == nil {
			t.Fatalf("run %d = %s %s (result %v)", i, st.ID, st.State, st.Result)
		}
	}
}

// TestRecoveredCancelledRunStaysCancelled: a run cancelled before the
// restart must not be re-enqueued.
func TestRecoveredCancelledRunStaysCancelled(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, QueueCap: 4, DataDir: dir})
	// Occupy the worker so the second submission stays queued.
	blocker, err := m.Submit(longSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(shortSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	shutdownOrFail(t, m, 60*time.Second)

	m2 := newTestManager(t, Config{Workers: 1, DataDir: dir})
	defer shutdownOrFail(t, m2, 30*time.Second)
	if got := m2.Stats().RecoveredRuns; got != 0 {
		t.Fatalf("RecoveredRuns = %d, want 0 (both runs were cancelled)", got)
	}
	st, err := m2.Get(queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancelled run after restart: %v state %s", err, st.State)
	}
}

func ids(i int) string { return fmt.Sprintf("r%06d", i) }
