// Package journal is the control plane's durability layer: an
// append-only write-ahead log of typed JSON records, framed with a
// length and a CRC32 so that a torn tail (the half-written record a
// crash leaves behind) is detected and cleanly discarded on replay.
//
// A journal is a directory of numbered segment files. Appends go to the
// newest segment; once it exceeds Options.SegmentBytes the journal
// rotates to a fresh one. Compaction replaces history with a snapshot:
// Compact writes the caller's snapshot record as the first record of a
// new segment and deletes every older segment, so replay cost stays
// proportional to the state since the last snapshot, not the daemon's
// lifetime.
//
// Crash semantics: a record is durable once Append returns (written to
// the OS; fsynced when Options.Fsync is set). Replay delivers every
// intact record in append order and stops at the first torn or corrupt
// record, truncating the log there — records after a corruption are
// unreachable by construction (their predecessor's frame is broken), so
// dropping them is the only consistent recovery.
//
// internal/server journals run lifecycle transitions and
// internal/cluster journals sweep and cell settlements; both replay on
// daemon restart to resume interrupted work (see DESIGN.md §10).
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tieredmem/mtat/internal/telemetry"
)

// Frame layout: a fixed header followed by the JSON payload.
const (
	// headerBytes is the frame header size: uint32 payload length +
	// uint32 CRC32-Castagnoli of the payload, both little-endian.
	headerBytes = 8
	// MaxRecordBytes bounds one record's payload; a length field beyond
	// it marks the frame as torn (corrupt lengths must not drive huge
	// allocations).
	MaxRecordBytes = 1 << 24
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is unset.
const DefaultSegmentBytes = 4 << 20

// castagnoli is the CRC32 polynomial used for frame checksums (better
// error detection than IEEE, hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled entry: a type tag the owner dispatches on and
// an opaque JSON payload.
type Record struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Decode unmarshals the record's payload into v.
func (r Record) Decode(v any) error {
	if err := json.Unmarshal(r.Data, v); err != nil {
		return fmt.Errorf("journal: decode %q record: %w", r.Type, err)
	}
	return nil
}

// Options tunes a journal.
type Options struct {
	// SegmentBytes is the rotation threshold (<= 0 selects
	// DefaultSegmentBytes).
	SegmentBytes int64
	// Fsync syncs the segment file after every append. Off by default:
	// an OS crash can then lose the page-cache tail, but a process
	// crash (the case the control plane recovers from) loses nothing.
	Fsync bool
	// Telemetry receives append latency, replay counters, and
	// torn-record events. Nil disables them.
	Telemetry *telemetry.Telemetry
}

// ReplayStats summarizes what Open found on disk.
type ReplayStats struct {
	// Segments is the number of segment files scanned.
	Segments int `json:"segments"`
	// Records is the number of intact records replayed.
	Records int `json:"records"`
	// Torn reports whether replay stopped at a torn or corrupt record.
	Torn bool `json:"torn,omitempty"`
	// TruncatedBytes is the size of the discarded tail (the torn record
	// and everything after it in its segment).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// DroppedSegments counts segments after the torn one that were
	// removed (unreachable once their predecessor is broken).
	DroppedSegments int `json:"dropped_segments,omitempty"`
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	size   int64
	recs   int64 // records appended since Open or the last Compact
	closed bool

	start     time.Time
	tr        *telemetry.Tracer
	hAppend   *telemetry.Histogram
	mAppends  *telemetry.Counter
	mRotates  *telemetry.Counter
	mCompacts *telemetry.Counter
	mReplayed *telemetry.Counter
	mTorn     *telemetry.Counter
}

// Open opens (creating if needed) the journal in dir, replays every
// intact record through fn in append order, truncates any torn tail,
// and returns the journal positioned for appends. fn may be nil to
// skip delivery (the scan and truncation still happen); an fn error
// aborts the open.
func Open(dir string, opts Options, fn func(Record) error) (*Journal, ReplayStats, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ReplayStats{}, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, start: time.Now(), tr: opts.Telemetry.Tracer()}
	m := opts.Telemetry.Metrics()
	j.hAppend = m.Histogram(telemetry.MetricJournalAppendTime)
	j.mAppends = m.Counter(telemetry.MetricJournalAppends)
	j.mRotates = m.Counter(telemetry.MetricJournalRotations)
	j.mCompacts = m.Counter(telemetry.MetricJournalCompactions)
	j.mReplayed = m.Counter(telemetry.MetricJournalReplayed)
	j.mTorn = m.Counter(telemetry.MetricJournalTorn)

	seqs, err := j.segments()
	if err != nil {
		return nil, ReplayStats{}, err
	}
	var stats ReplayStats
	for i, seq := range seqs {
		path := j.segmentPath(seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, stats, fmt.Errorf("journal: %w", err)
		}
		stats.Segments++
		consumed, torn, err := Scan(data, func(rec Record) error {
			stats.Records++
			j.mReplayed.Inc()
			if fn != nil {
				return fn(rec)
			}
			return nil
		})
		if err != nil {
			return nil, stats, err
		}
		if torn {
			// Discard the torn tail and everything past it: records
			// beyond a broken frame cannot be trusted.
			stats.Torn = true
			stats.TruncatedBytes = int64(len(data) - consumed)
			j.mTorn.Inc()
			j.tr.EmitMsg(j.now(), telemetry.EvJournalTorn, telemetry.WLNone,
				filepath.Base(path), telemetry.I("offset", consumed),
				telemetry.I("dropped_bytes", len(data)-consumed))
			if err := os.Truncate(path, int64(consumed)); err != nil {
				return nil, stats, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
			for _, later := range seqs[i+1:] {
				if err := os.Remove(j.segmentPath(later)); err != nil {
					return nil, stats, fmt.Errorf("journal: drop segment: %w", err)
				}
				stats.DroppedSegments++
			}
			seqs = seqs[:i+1]
			break
		}
	}

	// Position for appends: continue the newest segment, or start the
	// first one on an empty directory.
	if len(seqs) == 0 {
		j.seq = 1
		if j.f, err = os.OpenFile(j.segmentPath(j.seq),
			os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644); err != nil {
			return nil, stats, fmt.Errorf("journal: %w", err)
		}
	} else {
		j.seq = seqs[len(seqs)-1]
		f, err := os.OpenFile(j.segmentPath(j.seq), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, stats, fmt.Errorf("journal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("journal: %w", err)
		}
		j.f, j.size = f, fi.Size()
	}
	j.tr.EmitMsg(j.now(), telemetry.EvJournalReplay, telemetry.WLNone, dir,
		telemetry.I("segments", stats.Segments), telemetry.I("records", stats.Records),
		telemetry.I("torn", boolInt(stats.Torn)))
	return j, stats, nil
}

// Append journals one record: v is marshaled as the payload of a typ
// record, framed, and written to the newest segment (rotating first when
// the segment is over the threshold). The record is durable against
// process crash once Append returns.
func (j *Journal) Append(typ string, v any) error {
	payload, err := encodeRecord(typ, v)
	if err != nil {
		return err
	}
	frame := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerBytes:], payload)

	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if j.size >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if j.opts.Fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.size += int64(len(frame))
	j.recs++
	j.mAppends.Inc()
	j.hAppend.Observe(time.Since(start).Seconds())
	return nil
}

// Compact replaces the journal's history with a snapshot: v is written
// as the sole record of a fresh segment and every older segment is
// deleted. On the next Open, replay starts at the snapshot record. The
// snapshot segment is always fsynced before old segments are removed,
// so a crash during compaction never loses both the history and the
// snapshot.
func (j *Journal) Compact(typ string, v any) error {
	payload, err := encodeRecord(typ, v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	oldSeq := j.seq
	if err := j.rotateLocked(); err != nil {
		return err
	}
	frame := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerBytes:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// The snapshot must be on disk before history disappears.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	j.size += int64(len(frame))
	seqs, err := j.segments()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= oldSeq {
			if err := os.Remove(j.segmentPath(seq)); err != nil {
				return fmt.Errorf("journal: compact: %w", err)
			}
		}
	}
	j.recs = 1
	j.mCompacts.Inc()
	j.tr.EmitMsg(j.now(), telemetry.EvJournalCompact, telemetry.WLNone, typ,
		telemetry.I("dropped_segments", len(seqs)-1))
	return nil
}

// Records returns the number of records appended since Open or the last
// Compact — the owner's compaction trigger signal.
func (j *Journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recs
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Sync flushes the newest segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: close: %w", err)
	}
	return j.f.Close()
}

// rotateLocked closes the current segment and starts the next one.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: rotate sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.seq++
	f, err := os.OpenFile(j.segmentPath(j.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f, j.size = f, 0
	j.mRotates.Inc()
	return nil
}

// segmentPath names segment seq inside the journal directory.
func (j *Journal) segmentPath(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("seg-%08d.wal", seq))
}

// segments lists the directory's segment sequence numbers in order.
func (j *Journal) segments() ([]uint64, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "seg-%d.wal", &seq); err != nil || seq == 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	return seqs, nil
}

// now is the journal's telemetry clock: seconds since Open.
func (j *Journal) now() float64 { return time.Since(j.start).Seconds() }

// encodeRecord marshals a record payload.
func encodeRecord(typ string, v any) ([]byte, error) {
	if typ == "" {
		return nil, fmt.Errorf("journal: empty record type")
	}
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal %q record: %w", typ, err)
	}
	payload, err := json.Marshal(Record{Type: typ, Data: data})
	if err != nil {
		return nil, fmt.Errorf("journal: marshal %q record: %w", typ, err)
	}
	return payload, nil
}

// Scan walks one segment's raw bytes, delivering every intact record to
// fn in order. It returns the number of bytes consumed by intact
// records and whether scanning stopped at a torn record (short header,
// oversized or short payload, checksum mismatch, or undecodable JSON).
// Scan never panics, whatever the input — the fuzz target in this
// package holds it to that. A non-nil error comes only from fn and
// aborts the scan.
func Scan(data []byte, fn func(Record) error) (consumed int, torn bool, err error) {
	off := 0
	for {
		if off == len(data) {
			return off, false, nil // clean end of segment
		}
		if len(data)-off < headerBytes {
			return off, true, nil // torn header
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > MaxRecordBytes {
			return off, true, nil // nonsense length
		}
		if len(data)-off-headerBytes < int(n) {
			return off, true, nil // torn payload
		}
		payload := data[off+headerBytes : off+headerBytes+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, true, nil // checksum mismatch
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil || rec.Type == "" {
			return off, true, nil // framed but not a record
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, false, err
			}
		}
		off += headerBytes + int(n)
	}
}

// ScanFile is Scan over a segment file on disk — the golden-format tests
// replay committed .wal fixtures through it.
func ScanFile(path string, fn func(Record) error) (consumed int, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, fmt.Errorf("journal: %w", err)
	}
	return Scan(data, fn)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
