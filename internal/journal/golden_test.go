package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden testdata fixtures")

// goldenResult is the committed replay outcome for one fixture: the
// decoded records plus where and how the scan stopped.
type goldenResult struct {
	Records  []Record `json:"records"`
	Consumed int      `json:"consumed"`
	Torn     bool     `json:"torn"`
}

// goldenCases builds each fixture's bytes deterministically — the
// generator behind `go test -run TestGolden -update`, kept next to the
// assertions so the fixtures are reproducible from source.
func goldenCases() map[string][]byte {
	clean := bytes.Join([][]byte{
		fuzzRecord("run.submitted", map[string]any{"id": "r000001", "seed": 7}),
		fuzzRecord("run.started", map[string]any{"id": "r000001"}),
		fuzzRecord("run.finished", map[string]any{"id": "r000001", "state": "done"}),
	}, nil)

	truncated := bytes.Clone(clean[:len(clean)-5])

	bitflip := bytes.Clone(clean)
	bitflip[len(bitflip)-10] ^= 0x01

	zeroLen := bytes.Clone(clean)
	binary.LittleEndian.PutUint32(zeroLen[len(clean)-len(fuzzRecord("run.finished",
		map[string]any{"id": "r000001", "state": "done"})):], 0)

	snapshot := bytes.Join([][]byte{
		fuzzRecord("snapshot", map[string]any{"next_id": 2, "runs": []string{"r000001"}}),
		fuzzRecord("run.submitted", map[string]any{"id": "r000002", "seed": 9}),
	}, nil)

	return map[string][]byte{
		"clean-log":      clean,
		"torn-truncated": truncated,
		"torn-bitflip":   bitflip,
		"torn-zero-len":  zeroLen,
		"snapshot-delta": snapshot,
		"empty":          {},
	}
}

// TestGoldenReplay scans the committed .wal fixtures and compares the
// replay outcome against the committed .golden.json files byte for
// byte. A framing or scan change that silently alters how old logs
// replay fails here first.
func TestGoldenReplay(t *testing.T) {
	cases := goldenCases()
	if *update {
		for name, data := range cases {
			if err := os.WriteFile(fixturePath(name, ".wal"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			res := scanGolden(t, data)
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(fixturePath(name, ".golden.json"), append(out, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(fixturePath(name, ".wal"))
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update): %v", err)
			}
			// The committed fixture must match the generator — otherwise
			// the fixtures no longer test what the source claims.
			if !bytes.Equal(data, cases[name]) {
				t.Fatalf("fixture %s.wal diverged from its generator (regenerate with -update)", name)
			}
			want, err := os.ReadFile(fixturePath(name, ".golden.json"))
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			got, err := json.MarshalIndent(scanGolden(t, data), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if !bytes.Equal(got, want) {
				t.Errorf("replay outcome drifted from golden:\n--- want\n%s\n--- got\n%s", want, got)
			}
		})
	}
}

func scanGolden(t *testing.T, data []byte) goldenResult {
	t.Helper()
	var res goldenResult
	consumed, torn, err := Scan(data, func(rec Record) error {
		res.Records = append(res.Records, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	res.Consumed, res.Torn = consumed, torn
	return res
}

func fixturePath(name, ext string) string {
	return filepath.Join("testdata", name+ext)
}
