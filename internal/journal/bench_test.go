package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchPayload is a representative run-lifecycle record body.
type benchPayload struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Seed  int64   `json:"seed"`
	P99   float64 `json:"p99"`
	Note  string  `json:"note"`
}

func benchRecord(i int, pad int) benchPayload {
	return benchPayload{
		ID:    fmt.Sprintf("r%06d", i),
		State: "done",
		Seed:  int64(i),
		P99:   0.00225,
		Note:  strings.Repeat("x", pad),
	}
}

func BenchmarkAppend(b *testing.B) {
	for _, pad := range []int{0, 256, 4096} {
		b.Run(fmt.Sprintf("payload+%dB", pad), func(b *testing.B) {
			j, _, err := Open(b.TempDir(), Options{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			rec := benchRecord(0, pad)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append("run.finished", rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendFsync(b *testing.B) {
	j, _, err := Open(b.TempDir(), Options{Fsync: true}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := benchRecord(0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("run.finished", rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures Open replaying a 10k-record log.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	for i := 0; i < records; i++ {
		if err := j.Append("run.finished", benchRecord(i, 256)); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, seq := range mustGlob(b, dir) {
		fi, err := os.Stat(seq)
		if err != nil {
			b.Fatal(err)
		}
		total += fi.Size()
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		j, _, err := Open(dir, Options{}, func(Record) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
		j.Close()
	}
}

// BenchmarkScan measures the raw frame scanner over an in-memory 10k
// record log — replay cost without the filesystem.
func BenchmarkScan(b *testing.B) {
	var data []byte
	const records = 10000
	for i := 0; i < records; i++ {
		data = append(data, fuzzRecord("run.finished", benchRecord(i, 256))...)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_, torn, err := Scan(data, func(Record) error {
			n++
			return nil
		})
		if err != nil || torn || n != records {
			b.Fatalf("scan: n=%d torn=%v err=%v", n, torn, err)
		}
	}
}

func mustGlob(b *testing.B, dir string) []string {
	b.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		b.Fatal(err)
	}
	return segs
}
