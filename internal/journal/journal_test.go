package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/tieredmem/mtat/internal/telemetry"
)

// entry is the payload type the tests journal.
type entry struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

// collect replays a journal directory into a flat record list.
func collect(t *testing.T, dir string, opts Options) ([]Record, ReplayStats, *Journal) {
	t.Helper()
	var recs []Record
	j, stats, err := Open(dir, opts, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return recs, stats, j
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, stats, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("fresh journal replayed %+v", stats)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append("entry", entry{ID: fmt.Sprintf("e%03d", i), N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := j.Records(); got != 100 {
		t.Fatalf("Records() = %d, want 100", got)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, stats, j2 := collect(t, dir, Options{})
	defer j2.Close()
	if stats.Torn {
		t.Fatalf("clean log reported torn: %+v", stats)
	}
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Type != "entry" {
			t.Fatalf("record %d type %q", i, r.Type)
		}
		var e entry
		if err := r.Decode(&e); err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if e.N != i {
			t.Fatalf("record %d decoded N=%d", i, e.N)
		}
	}
}

func TestAppendAfterReopenContinuesLog(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j.Append("entry", entry{N: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, _, j2 := collect(t, dir, Options{})
	if err := j2.Append("entry", entry{N: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	recs, _, j3 := collect(t, dir, Options{})
	defer j3.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	j, _, err := Open(dir, Options{SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Append("entry", entry{ID: "rotate", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("expected >= 3 segments, got %d (%v)", len(segs), err)
	}
	recs, stats, j2 := collect(t, dir, Options{SegmentBytes: 128})
	defer j2.Close()
	if len(recs) != 50 {
		t.Fatalf("replayed %d records across %d segments, want 50", len(recs), stats.Segments)
	}
	for i, r := range recs {
		var e entry
		if err := r.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.N != i {
			t.Fatalf("rotation broke ordering: record %d has N=%d", i, e.N)
		}
	}
}

func TestCompactionDropsHistory(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := j.Append("entry", entry{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact("snapshot", entry{ID: "snap", N: 40}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := j.Records(); got != 1 {
		t.Fatalf("Records() after compact = %d, want 1", got)
	}
	if err := j.Append("entry", entry{N: 41}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	recs, stats, j2 := collect(t, dir, Options{})
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after compaction, want 2 (snapshot + 1 delta)", len(recs))
	}
	if recs[0].Type != "snapshot" {
		t.Fatalf("first replayed record is %q, want snapshot", recs[0].Type)
	}
	var e entry
	if err := recs[1].Decode(&e); err != nil || e.N != 41 {
		t.Fatalf("delta after snapshot = %+v (err %v)", e, err)
	}
	if stats.Segments != 1 {
		t.Fatalf("compaction left %d segments, want 1", stats.Segments)
	}
}

// TestTornTailTable drives replay through every corruption class a crash
// can leave behind and asserts the intact prefix survives each one.
func TestTornTailTable(t *testing.T) {
	// build writes a clean 3-record log and returns its single segment.
	build := func(t *testing.T) (dir, seg string) {
		t.Helper()
		dir = t.TempDir()
		j, _, err := Open(dir, Options{}, nil)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := j.Append("entry", entry{ID: "torn", N: i}); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return dir, filepath.Join(dir, "seg-00000001.wal")
	}

	tests := []struct {
		name    string
		corrupt func(t *testing.T, seg string)
		want    int  // intact records expected on replay
		torn    bool // replay should report a torn tail
	}{
		{"clean", func(t *testing.T, seg string) {}, 3, false},
		{"truncated mid-payload", func(t *testing.T, seg string) {
			data := read(t, seg)
			write(t, seg, data[:len(data)-5])
		}, 2, true},
		{"truncated mid-header", func(t *testing.T, seg string) {
			data := read(t, seg)
			bounds := frameBounds(t, data)
			write(t, seg, data[:bounds[2]+3])
		}, 2, true},
		{"bit flip in last payload", func(t *testing.T, seg string) {
			data := read(t, seg)
			data[len(data)-2] ^= 0x40
			write(t, seg, data)
		}, 2, true},
		{"bit flip in first payload", func(t *testing.T, seg string) {
			data := read(t, seg)
			data[headerBytes+2] ^= 0x01
			write(t, seg, data)
		}, 0, true},
		{"length field garbage", func(t *testing.T, seg string) {
			data := read(t, seg)
			bounds := frameBounds(t, data)
			binary.LittleEndian.PutUint32(data[bounds[1]:], 0xFFFFFFFF)
			write(t, seg, data)
		}, 1, true},
		{"zero length field", func(t *testing.T, seg string) {
			data := read(t, seg)
			bounds := frameBounds(t, data)
			binary.LittleEndian.PutUint32(data[bounds[2]:], 0)
			write(t, seg, data)
		}, 2, true},
		{"appended garbage", func(t *testing.T, seg string) {
			data := append(read(t, seg), []byte("garbage tail not a frame")...)
			write(t, seg, data)
		}, 3, true},
		{"valid frame, non-record JSON", func(t *testing.T, seg string) {
			payload := []byte(`[1,2,3]`)
			frame := make([]byte, headerBytes+len(payload))
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
			copy(frame[headerBytes:], payload)
			write(t, seg, append(read(t, seg), frame...))
		}, 3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir, seg := build(t)
			tt.corrupt(t, seg)

			recs, stats, j := collect(t, dir, Options{})
			if len(recs) != tt.want {
				t.Fatalf("replayed %d records, want %d (stats %+v)", len(recs), tt.want, stats)
			}
			if stats.Torn != tt.torn {
				t.Fatalf("torn = %v, want %v", stats.Torn, tt.torn)
			}
			// The journal must be appendable after recovery, and the new
			// record must land right after the surviving prefix.
			if err := j.Append("entry", entry{ID: "after", N: 99}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			j.Close()
			recs2, stats2, j2 := collect(t, dir, Options{})
			j2.Close()
			if stats2.Torn {
				t.Fatalf("second replay still torn: %+v", stats2)
			}
			if len(recs2) != tt.want+1 {
				t.Fatalf("after recovery+append replayed %d, want %d", len(recs2), tt.want+1)
			}
			var e entry
			if err := recs2[len(recs2)-1].Decode(&e); err != nil || e.ID != "after" {
				t.Fatalf("last record = %+v (err %v)", e, err)
			}
		})
	}
}

// TestTornMiddleSegmentDropsLaterSegments: a corruption in segment k makes
// segments > k unreachable; replay must stop at k's good prefix and the
// later files must be removed.
func TestTornMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 96}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 30; i++ {
		if err := j.Append("entry", entry{ID: "mid", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt the second segment's first record.
	data := read(t, segs[1])
	data[headerBytes+1] ^= 0x80
	write(t, segs[1], data)

	recs, stats, j2 := collect(t, dir, Options{SegmentBytes: 96})
	defer j2.Close()
	if !stats.Torn {
		t.Fatalf("expected torn, got %+v", stats)
	}
	if stats.DroppedSegments != len(segs)-2 {
		t.Fatalf("dropped %d segments, want %d", stats.DroppedSegments, len(segs)-2)
	}
	// Every surviving record is the uncorrupted prefix, in order.
	for i, r := range recs {
		var e entry
		if err := r.Decode(&e); err != nil || e.N != i {
			t.Fatalf("record %d = %+v (err %v)", i, e, err)
		}
	}
	left, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(left) != 2 {
		t.Fatalf("%d segment files left, want 2", len(left))
	}
}

func TestReplayFnErrorAbortsOpen(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("entry", entry{N: 1})
	j.Close()

	wantErr := fmt.Errorf("replay veto")
	_, _, err = Open(dir, Options{}, func(Record) error { return wantErr })
	if err == nil || !strings.Contains(err.Error(), "replay veto") {
		t.Fatalf("Open error = %v, want replay veto", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, each = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append("entry", entry{ID: fmt.Sprintf("w%d", w), N: i}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	recs, stats, j2 := collect(t, dir, Options{})
	defer j2.Close()
	if stats.Torn {
		t.Fatalf("concurrent appends tore the log: %+v", stats)
	}
	if len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
	// Per-writer order must be preserved even though writers interleave.
	last := map[string]int{}
	for _, r := range recs {
		var e entry
		if err := r.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if prev, ok := last[e.ID]; ok && e.N != prev+1 {
			t.Fatalf("writer %s jumped %d -> %d", e.ID, prev, e.N)
		}
		last[e.ID] = e.N
	}
}

func TestTelemetryWiring(t *testing.T) {
	tel := telemetry.New()
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 64, Telemetry: tel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append("entry", entry{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact("snapshot", entry{N: 10}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	m := tel.Metrics()
	if got := m.Counter(telemetry.MetricJournalAppends).Value(); got != 10 {
		t.Fatalf("appends counter = %d, want 10", got)
	}
	if got := m.Counter(telemetry.MetricJournalCompactions).Value(); got != 1 {
		t.Fatalf("compactions counter = %d, want 1", got)
	}
	if got := m.Counter(telemetry.MetricJournalRotations).Value(); got == 0 {
		t.Fatal("rotations counter stayed 0 despite 64-byte segments")
	}
	if got := m.Histogram(telemetry.MetricJournalAppendTime).Count(); got != 10 {
		t.Fatalf("append latency histogram count = %d, want 10", got)
	}

	// A reopen with a torn tail feeds the torn counter and event.
	seg, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	data := read(t, seg[len(seg)-1])
	write(t, seg[len(seg)-1], append(data, 0xDE, 0xAD))
	tel2 := telemetry.New()
	_, stats, j2 := collect(t, dir, Options{Telemetry: tel2})
	j2.Close()
	if !stats.Torn {
		t.Fatalf("expected torn tail, got %+v", stats)
	}
	if got := tel2.Metrics().Counter(telemetry.MetricJournalTorn).Value(); got != 1 {
		t.Fatalf("torn counter = %d, want 1", got)
	}
	if got := tel2.Metrics().Counter(telemetry.MetricJournalReplayed).Value(); got == 0 {
		t.Fatal("replayed counter stayed 0")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append("entry", entry{}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestFsyncOption(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{Fsync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append("entry", entry{N: 1}); err != nil {
		t.Fatalf("fsync append: %v", err)
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestDecodeError(t *testing.T) {
	r := Record{Type: "entry", Data: json.RawMessage(`{"n": "not a number"}`)}
	var e entry
	if err := r.Decode(&e); err == nil {
		t.Fatal("Decode of mistyped payload succeeded")
	}
}

// frameBounds returns the byte offset of each frame boundary in data
// (offset 0, then after record 1, record 2, ...).
func frameBounds(t *testing.T, data []byte) []int {
	t.Helper()
	bounds := []int{0}
	off := 0
	for off < len(data) {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		off += headerBytes + int(n)
		bounds = append(bounds, off)
	}
	return bounds
}

func read(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
