package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzFrame builds one well-formed frame around payload.
func fuzzFrame(payload []byte) []byte {
	frame := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerBytes:], payload)
	return frame
}

func fuzzRecord(typ string, v any) []byte {
	data, _ := json.Marshal(v)
	payload, _ := json.Marshal(Record{Type: typ, Data: data})
	return fuzzFrame(payload)
}

// FuzzJournalReplay feeds arbitrary bytes through the replay path: Scan
// must never panic, must consume only whole valid frames, and must stop
// cleanly at the first torn record; Open on the same bytes must recover
// the intact prefix and accept appends afterwards.
func FuzzJournalReplay(f *testing.F) {
	// Seeds: the interesting shapes — empty, a clean two-record log, the
	// same log truncated mid-payload and mid-header, a bit flip in the
	// middle, an oversized length field, a zero length, a valid frame
	// holding non-record JSON, and raw garbage.
	clean := append(fuzzRecord("run.submitted", map[string]any{"id": "r000001", "n": 1}),
		fuzzRecord("run.finished", map[string]any{"id": "r000001", "state": "done"})...)
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:headerBytes/2])
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	huge := bytes.Clone(clean)
	binary.LittleEndian.PutUint32(huge[0:4], 0xFFFFFFFF)
	f.Add(huge)
	zero := bytes.Clone(clean)
	binary.LittleEndian.PutUint32(zero[0:4], 0)
	f.Add(zero)
	f.Add(fuzzFrame([]byte(`"just a string"`)))
	f.Add([]byte("\x13\x37garbage that is definitely not a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		consumed, torn, err := Scan(data, func(rec Record) error {
			recs = append(recs, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("Scan error from non-erroring fn: %v", err)
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d outside [0,%d]", consumed, len(data))
		}
		if !torn && consumed != len(data) {
			t.Fatalf("clean scan consumed %d of %d bytes", consumed, len(data))
		}
		// Prefix consistency: rescanning exactly the consumed bytes must
		// be clean and reproduce the same records.
		n := 0
		consumed2, torn2, err := Scan(data[:consumed], func(rec Record) error {
			if rec.Type != recs[n].Type || !bytes.Equal(rec.Data, recs[n].Data) {
				t.Fatalf("rescan record %d differs", n)
			}
			n++
			return nil
		})
		if err != nil || torn2 || consumed2 != consumed || n != len(recs) {
			t.Fatalf("rescan of intact prefix: consumed %d/%d torn=%v err=%v (%d/%d records)",
				consumed2, consumed, torn2, err, n, len(recs))
		}

		// The same bytes as an on-disk segment: Open must recover the
		// prefix, truncate the tail, and keep accepting appends.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		replayed := 0
		j, stats, err := Open(dir, Options{}, func(Record) error {
			replayed++
			return nil
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer j.Close()
		if replayed != len(recs) || stats.Torn != torn {
			t.Fatalf("Open replayed %d records (want %d), torn=%v (want %v)",
				replayed, len(recs), stats.Torn, torn)
		}
		if err := j.Append("post", map[string]int{"k": 1}); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
	})
}
