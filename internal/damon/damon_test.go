package damon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tieredmem/mtat/internal/mem"
)

func testConfig() Config {
	return Config{MinRegions: 4, MaxRegions: 64, MergeThreshold: 0.1, Seed: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{MinRegions: 0, MaxRegions: 10, MergeThreshold: 0.1},
		{MinRegions: 10, MaxRegions: 5, MergeThreshold: 0.1},
		{MinRegions: 1, MaxRegions: 10, MergeThreshold: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(10, 10, testConfig()); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewMonitor(0, 100, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	m, err := NewMonitor(0, 100, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumRegions(); got != 4 {
		t.Errorf("initial regions = %d, want MinRegions 4", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Tiny range: fewer pages than MinRegions still works.
	tiny, err := NewMonitor(0, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecordAccessAttribution(t *testing.T) {
	m, _ := NewMonitor(100, 200, testConfig())
	m.RecordAccess(100) // first region
	m.RecordAccess(199) // last region
	m.RecordAccess(99)  // outside: ignored
	m.RecordAccess(200) // outside: ignored
	regions := m.Regions()
	if regions[0].Accesses != 1 {
		t.Errorf("first region accesses = %d, want 1", regions[0].Accesses)
	}
	if last := regions[len(regions)-1]; last.Accesses != 1 {
		t.Errorf("last region accesses = %d, want 1", last.Accesses)
	}
	var total uint64
	for _, r := range regions {
		total += r.Accesses
	}
	if total != 2 {
		t.Errorf("total attributed = %d, want 2 (out-of-range ignored)", total)
	}
}

func TestAggregateConvergesOnHotSpot(t *testing.T) {
	// 1000 pages; pages [0, 50) receive 90% of accesses. After several
	// aggregation intervals the monitor must resolve the hot spot: the
	// top-50 hottest pages should be mostly from the true hot range.
	m, _ := NewMonitor(0, 1000, Config{MinRegions: 4, MaxRegions: 128, MergeThreshold: 0.15, Seed: 3})
	rng := rand.New(rand.NewSource(7))
	for interval := 0; interval < 20; interval++ {
		for i := 0; i < 5000; i++ {
			var pid mem.PageID
			if rng.Float64() < 0.9 {
				pid = mem.PageID(rng.Intn(50))
			} else {
				pid = mem.PageID(rng.Intn(1000))
			}
			m.RecordAccess(pid)
		}
		m.Aggregate()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
	}
	hot := m.HottestPages(nil, 50)
	inHot := 0
	for _, pid := range hot {
		if pid < 50 {
			inHot++
		}
	}
	if inHot < 35 {
		t.Errorf("only %d/50 hottest pages fall in the true hot range", inHot)
	}
	// Bookkeeping stays bounded far below per-page tracking.
	if m.NumRegions() > 128 {
		t.Errorf("regions = %d, exceeds max", m.NumRegions())
	}
}

func TestColdestPages(t *testing.T) {
	m, _ := NewMonitor(0, 100, testConfig())
	// Heat the last quarter.
	for i := 0; i < 1000; i++ {
		m.RecordAccess(mem.PageID(75 + i%25))
	}
	m.Aggregate()
	cold := m.ColdestPages(nil, 10)
	for _, pid := range cold {
		if pid >= 75 {
			t.Errorf("cold page %d drawn from the hot range", pid)
		}
	}
	if got := m.HottestPages(nil, 0); len(got) != 0 {
		t.Errorf("HottestPages(0) = %v", got)
	}
	if got := m.ColdestPages(nil, 0); len(got) != 0 {
		t.Errorf("ColdestPages(0) = %v", got)
	}
}

// Property: under arbitrary access/aggregate sequences the regions always
// tile the range exactly and stay within bounds.
func TestMonitorInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 50 + rng.Intn(500)
		cfg := Config{
			MinRegions:     1 + rng.Intn(8),
			MaxRegions:     16 + rng.Intn(64),
			MergeThreshold: rng.Float64() * 0.5,
			Seed:           seed,
		}
		m, err := NewMonitor(0, mem.PageID(size), cfg)
		if err != nil {
			return false
		}
		for interval := 0; interval < 8; interval++ {
			n := rng.Intn(2000)
			for i := 0; i < n; i++ {
				m.RecordAccess(mem.PageID(rng.Intn(size)))
			}
			m.Aggregate()
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMergeRespectsMinRegions(t *testing.T) {
	// With no accesses at all every region looks identical; merging must
	// still stop at MinRegions.
	m, _ := NewMonitor(0, 1000, Config{MinRegions: 4, MaxRegions: 8, MergeThreshold: 0.5, Seed: 1})
	for i := 0; i < 10; i++ {
		m.Aggregate()
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if m.NumRegions() < 4 {
			t.Fatalf("regions fell to %d, below MinRegions", m.NumRegions())
		}
	}
}
