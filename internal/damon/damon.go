// Package damon implements DAMON-style adaptive region-based access
// monitoring [Park et al., Middleware'19 industrial track], the
// lightweight alternative to per-page counting that the paper's related
// work discusses (Telescope extends it to terabyte footprints). Instead of
// one counter per page, the monitor maintains a bounded set of contiguous
// regions; each sampled access is attributed to its region, and at every
// aggregation boundary regions with similar access counts merge while
// large or hot regions split, adaptively concentrating resolution where
// the access pattern has structure.
//
// The trade-off it exposes — bounded bookkeeping versus per-page fidelity
// — is evaluated by the "monitoring" experiment.
package damon

import (
	"fmt"
	"math/rand"

	"github.com/tieredmem/mtat/internal/mem"
)

// Region is a contiguous page range [Start, End) with its access count
// for the current aggregation interval and a smoothed activity estimate.
type Region struct {
	Start, End mem.PageID
	// Accesses is the sampled access count in the current interval.
	Accesses uint64
	// Smoothed is the exponentially aged access estimate across
	// intervals (DAMON's nr_accesses analogue).
	Smoothed float64
}

// Len returns the region's size in pages.
func (r Region) Len() int { return int(r.End - r.Start) }

// Config bounds the monitor's adaptivity.
type Config struct {
	// MinRegions and MaxRegions bound the region count.
	MinRegions int
	MaxRegions int
	// MergeThreshold merges adjacent regions whose per-page access rates
	// differ by at most this fraction of the larger rate.
	MergeThreshold float64
	// Seed drives the randomized split points.
	Seed int64
}

// DefaultConfig mirrors DAMON's defaults: 10-1000 regions, 10% merge
// threshold.
func DefaultConfig() Config {
	return Config{MinRegions: 10, MaxRegions: 1000, MergeThreshold: 0.1, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MinRegions < 1 {
		return fmt.Errorf("damon: MinRegions must be >= 1, got %d", c.MinRegions)
	}
	if c.MaxRegions < c.MinRegions {
		return fmt.Errorf("damon: MaxRegions (%d) must be >= MinRegions (%d)",
			c.MaxRegions, c.MinRegions)
	}
	if c.MergeThreshold < 0 || c.MergeThreshold > 1 {
		return fmt.Errorf("damon: MergeThreshold must be in [0,1], got %g", c.MergeThreshold)
	}
	return nil
}

// Monitor tracks access activity over one contiguous page range.
// It is not safe for concurrent use.
type Monitor struct {
	cfg     Config
	start   mem.PageID
	end     mem.PageID
	regions []Region
	rng     *rand.Rand
}

// NewMonitor returns a monitor over pages [start, end), initially split
// into MinRegions equal regions.
func NewMonitor(start, end mem.PageID, cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if end <= start {
		return nil, fmt.Errorf("damon: empty page range [%d, %d)", start, end)
	}
	m := &Monitor{
		cfg:   cfg,
		start: start,
		end:   end,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	n := cfg.MinRegions
	if total := int(end - start); n > total {
		n = total
	}
	size := int(end-start) / n
	for i := 0; i < n; i++ {
		lo := start + mem.PageID(i*size)
		hi := lo + mem.PageID(size)
		if i == n-1 {
			hi = end
		}
		m.regions = append(m.regions, Region{Start: lo, End: hi})
	}
	return m, nil
}

// NumRegions returns the current region count — the monitor's bookkeeping
// footprint.
func (m *Monitor) NumRegions() int { return len(m.regions) }

// Regions returns the current regions in address order. The slice is
// owned by the monitor and valid until the next Aggregate.
func (m *Monitor) Regions() []Region { return m.regions }

// RecordAccess attributes one sampled access to pid's region. Accesses
// outside the monitored range are ignored.
func (m *Monitor) RecordAccess(pid mem.PageID) {
	if pid < m.start || pid >= m.end {
		return
	}
	// Binary search over the sorted, contiguous regions.
	lo, hi := 0, len(m.regions)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.regions[mid].End <= pid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	m.regions[lo].Accesses++
}

// Aggregate closes the current interval: it folds counts into the
// smoothed estimates, merges adjacent regions with similar per-page
// rates, splits the busiest regions to regain resolution, and resets the
// interval counters.
func (m *Monitor) Aggregate() {
	for i := range m.regions {
		r := &m.regions[i]
		r.Smoothed = r.Smoothed/2 + float64(r.Accesses)
	}
	m.merge()
	m.split()
	for i := range m.regions {
		m.regions[i].Accesses = 0
	}
}

// perPageRate returns a region's smoothed per-page access rate.
func perPageRate(r Region) float64 {
	if r.Len() == 0 {
		return 0
	}
	return r.Smoothed / float64(r.Len())
}

// merge coalesces adjacent regions whose per-page rates are within the
// threshold, while respecting MinRegions.
func (m *Monitor) merge() {
	if len(m.regions) <= m.cfg.MinRegions {
		return
	}
	out := m.regions[:1]
	for i := 1; i < len(m.regions); i++ {
		r := m.regions[i]
		last := &out[len(out)-1]
		a, b := perPageRate(*last), perPageRate(r)
		max := a
		if b > max {
			max = b
		}
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		similar := max == 0 || diff <= m.cfg.MergeThreshold*max
		// Projected final count if this pair merges: regions emitted so
		// far plus the ones not yet processed.
		projected := len(out) + (len(m.regions) - i - 1)
		if similar && projected >= m.cfg.MinRegions {
			last.End = r.End
			last.Smoothed += r.Smoothed
			last.Accesses += r.Accesses
		} else {
			out = append(out, r)
		}
	}
	m.regions = out
}

// split divides regions at random points (DAMON's strategy for regaining
// resolution), hottest and largest first, until MaxRegions or one split
// per region this interval.
func (m *Monitor) split() {
	budget := m.cfg.MaxRegions - len(m.regions)
	if budget <= 0 {
		return
	}
	// Split every region larger than one page once, up to the budget,
	// preferring hotter regions (scan order approximates this cheaply
	// because hot regions accumulate more smoothed mass; DAMON itself
	// splits unconditionally).
	out := make([]Region, 0, len(m.regions)+budget)
	for _, r := range m.regions {
		if budget > 0 && r.Len() > 1 {
			cut := 1 + m.rng.Intn(r.Len()-1)
			left := Region{
				Start:    r.Start,
				End:      r.Start + mem.PageID(cut),
				Smoothed: r.Smoothed * float64(cut) / float64(r.Len()),
			}
			right := Region{
				Start:    left.End,
				End:      r.End,
				Smoothed: r.Smoothed - left.Smoothed,
			}
			out = append(out, left, right)
			budget--
		} else {
			out = append(out, r)
		}
	}
	m.regions = out
}

// HottestPages appends up to n pages from the hottest regions (by
// per-page smoothed rate) to dst, and returns the extended slice.
func (m *Monitor) HottestPages(dst []mem.PageID, n int) []mem.PageID {
	if n <= 0 {
		return dst
	}
	order := m.rateOrder()
	for i := len(order) - 1; i >= 0 && n > 0; i-- {
		r := m.regions[order[i]]
		for pid := r.Start; pid < r.End && n > 0; pid++ {
			dst = append(dst, pid)
			n--
		}
	}
	return dst
}

// ColdestPages appends up to n pages from the coldest regions to dst.
func (m *Monitor) ColdestPages(dst []mem.PageID, n int) []mem.PageID {
	if n <= 0 {
		return dst
	}
	order := m.rateOrder()
	for i := 0; i < len(order) && n > 0; i++ {
		r := m.regions[order[i]]
		for pid := r.Start; pid < r.End && n > 0; pid++ {
			dst = append(dst, pid)
			n--
		}
	}
	return dst
}

// rateOrder returns region indices sorted by ascending per-page rate.
func (m *Monitor) rateOrder() []int {
	order := make([]int, len(m.regions))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: region counts are small and mostly sorted.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && perPageRate(m.regions[order[j-1]]) > perPageRate(m.regions[order[j]]) {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	return order
}

// CheckInvariants verifies the regions exactly tile [start, end) in
// order. Tests call it after every operation.
func (m *Monitor) CheckInvariants() error {
	if len(m.regions) == 0 {
		return fmt.Errorf("damon: no regions")
	}
	if m.regions[0].Start != m.start {
		return fmt.Errorf("damon: first region starts at %d, want %d", m.regions[0].Start, m.start)
	}
	for i, r := range m.regions {
		if r.End <= r.Start {
			return fmt.Errorf("damon: region %d empty [%d,%d)", i, r.Start, r.End)
		}
		if i > 0 && r.Start != m.regions[i-1].End {
			return fmt.Errorf("damon: gap before region %d", i)
		}
	}
	if last := m.regions[len(m.regions)-1].End; last != m.end {
		return fmt.Errorf("damon: last region ends at %d, want %d", last, m.end)
	}
	if len(m.regions) > m.cfg.MaxRegions {
		return fmt.Errorf("damon: %d regions exceed max %d", len(m.regions), m.cfg.MaxRegions)
	}
	return nil
}
