package policy

import (
	"testing"
	"time"

	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/pebs"
	"github.com/tieredmem/mtat/internal/workload"
)

// testRig bundles a small co-location: one LC (16 pages, uniform) and two
// BEs (24 pages each) on a 32-page FMem / 128-page SMem system.
type testRig struct {
	sys     *mem.System
	sampler *pebs.Sampler
	lc      *workload.LC
	bes     []*workload.BE
	ctx     *Context
	now     float64
}

func newRig(t *testing.T, lcTier mem.Tier) *testRig {
	t.Helper()
	return newRigRate(t, lcTier, 0.01)
}

// newRigRate builds the rig with a specific PEBS sampling rate. TPP tests
// need sparse sampling (as at production scale) so that only a fraction of
// pages land on the active list each tick.
func newRigRate(t *testing.T, lcTier mem.Tier, rate float64) *testRig {
	t.Helper()
	cfg := mem.Config{
		PageSize:           1 << 20,
		FMemBytes:          32 << 20,
		SMemBytes:          512 << 20,
		FMemLatency:        73 * time.Nanosecond,
		SMemLatency:        202 * time.Nanosecond,
		MigrationBandwidth: 64 << 20, // generous: 64 pages/s
	}
	sys, err := mem.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcCfg := workload.RedisConfig()
	lcCfg.RSSBytes = 16 << 20
	lc, err := workload.NewLC(sys, lcCfg, lcTier, 1)
	if err != nil {
		t.Fatal(err)
	}
	var bes []*workload.BE
	for _, bc := range []workload.BEConfig{workload.PRConfig(2), workload.XSBenchConfig(2)} {
		bc.RSSBytes = 96 << 20
		be, err := workload.NewBE(sys, bc, mem.TierSMem)
		if err != nil {
			t.Fatal(err)
		}
		bes = append(bes, be)
	}
	sampler, err := pebs.NewSampler(sys, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{sys: sys, sampler: sampler, lc: lc, bes: bes}
	rig.ctx = &Context{
		Sys: sys, Sampler: sampler, DT: 0.1, LC: lc, BEs: bes,
		BEResults: make([]workload.BETickResult, len(bes)),
	}
	return rig
}

// tick advances the rig one step under p: workloads progress, accesses are
// sampled, then the policy acts.
func (r *testRig) tick(t *testing.T, p Policy) {
	t.Helper()
	r.sys.BeginTick(100 * time.Millisecond)
	r.sampler.BeginTick()
	lcRes, err := r.lc.Tick(0.5, 0.1, p.LCStall())
	if err != nil {
		t.Fatal(err)
	}
	r.sampler.RecordAccesses(r.lc.ID(), r.lc.Dist(), lcRes.Accesses)
	for i, be := range r.bes {
		beRes, err := be.Tick(0.1)
		if err != nil {
			t.Fatal(err)
		}
		r.sampler.RecordAccesses(be.ID(), be.Dist(), beRes.Accesses)
		r.ctx.BEResults[i] = beRes
	}
	r.ctx.LCResult = lcRes
	r.ctx.Now = r.now
	if err := p.Tick(r.ctx); err != nil {
		t.Fatal(err)
	}
	r.now += 0.1
}

func TestFMemAllPinsLC(t *testing.T) {
	rig := newRig(t, mem.TierSMem) // LC starts fully in SMem
	p := NewFMemAll()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rig.tick(t, p)
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got != 16 {
		t.Errorf("FMEM_ALL: LC FMem pages = %d, want all 16", got)
	}
	// BE workloads share the remaining 16 FMem pages.
	beTotal := rig.sys.FMemPages(rig.bes[0].ID()) + rig.sys.FMemPages(rig.bes[1].ID())
	if beTotal != 16 {
		t.Errorf("FMEM_ALL: BE FMem pages = %d, want 16", beTotal)
	}
	if p.LCStall() != 0 {
		t.Error("static policy should add no stall")
	}
	if p.Name() != "FMEM_ALL" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestSMemAllEvictsLC(t *testing.T) {
	rig := newRig(t, mem.TierFMem) // LC starts in FMem
	p := NewSMemAll()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rig.tick(t, p)
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got != 0 {
		t.Errorf("SMEM_ALL: LC FMem pages = %d, want 0", got)
	}
	// All 32 FMem pages go to the BEs.
	beTotal := rig.sys.FMemPages(rig.bes[0].ID()) + rig.sys.FMemPages(rig.bes[1].ID())
	if beTotal != 32 {
		t.Errorf("SMEM_ALL: BE FMem pages = %d, want 32", beTotal)
	}
	if p.Name() != "SMEM_ALL" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestStaticRequiresLC(t *testing.T) {
	rig := newRig(t, mem.TierSMem)
	rig.ctx.LC = nil
	if err := NewFMemAll().Init(rig.ctx); err == nil {
		t.Error("FMEM_ALL without LC accepted")
	}
}

func TestMEMTISStarvesLC(t *testing.T) {
	// The §2.2 phenomenon: LC starts with all of FMem, but its sparse
	// uniform accesses lose the global hotness competition against the
	// BE workloads' dense streams, so MEMTIS drains LC out of FMem.
	rig := newRig(t, mem.TierFMem)
	p := NewMEMTIS()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	start := rig.sys.FMemPages(rig.lc.ID())
	if start != 16 {
		t.Fatalf("LC should start with 16 FMem pages, has %d", start)
	}
	for i := 0; i < 100; i++ { // 10 simulated seconds
		rig.tick(t, p)
	}
	lcResident := rig.sys.FMemPages(rig.lc.ID())
	if lcResident > start/2 {
		t.Errorf("MEMTIS left %d of %d LC pages in FMem; expected starvation", lcResident, start)
	}
	// FMem stays fully utilized by the hottest pages.
	if free := rig.sys.FMemFreePages(); free > 2 {
		t.Errorf("MEMTIS left %d FMem pages free", free)
	}
	if p.Name() != "MEMTIS" || p.LCStall() != 0 {
		t.Error("MEMTIS metadata wrong")
	}
}

func TestMEMTISFavorsSkewedBE(t *testing.T) {
	// PR (Zipf 1.05) concentrates accesses; XSBench (uniform) does not.
	// Under global hotness, PR captures FMem disproportionately to its
	// share of total accesses.
	rig := newRig(t, mem.TierSMem)
	p := NewMEMTIS()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rig.tick(t, p)
	}
	pr := rig.sys.FMemPages(rig.bes[0].ID())
	xs := rig.sys.FMemPages(rig.bes[1].ID())
	if pr <= xs {
		t.Errorf("MEMTIS gave PR %d pages vs XSBench %d; want PR favored", pr, xs)
	}
}

func TestTPPPromotesOnFault(t *testing.T) {
	rig := newRigRate(t, mem.TierSMem, 2e-5)
	p := NewTPP()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rig.tick(t, p)
	}
	// Promotions happened: FMem is used (minus headroom).
	used := rig.sys.FMemCapacityPages() - rig.sys.FMemFreePages()
	if used == 0 {
		t.Fatal("TPP promoted nothing")
	}
	// Headroom respected approximately (within one tick's promotions).
	if free := rig.sys.FMemFreePages(); free == 0 {
		t.Error("TPP left no free headroom")
	}
	if p.Name() != "TPP" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestTPPStallGrowsWithMissRatio(t *testing.T) {
	rig := newRig(t, mem.TierSMem)
	p := NewTPP()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	rig.tick(t, p)
	stallAllSMem := p.LCStall()
	if stallAllSMem <= 0 {
		t.Fatalf("LC fully in SMem should stall under TPP, got %g", stallAllSMem)
	}
	want := float64(rig.lc.Config().MemTouches) * (1 - rig.lc.HitRatio()) *
		p.HintFaultFraction * p.FaultCost
	if diff := stallAllSMem - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("stall = %g, want %g", stallAllSMem, want)
	}
}

func TestTPPThrashesUnderContention(t *testing.T) {
	// Sustained BE access to SMem pages keeps generating promotions; the
	// migration engine should be saturated tick after tick.
	rig := newRigRate(t, mem.TierSMem, 2e-5)
	p := NewTPP()
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rig.tick(t, p)
	}
	early := rig.sys.MigratedPages()
	for i := 0; i < 20; i++ {
		rig.tick(t, p)
	}
	late := rig.sys.MigratedPages()
	if late-early < 20 {
		t.Errorf("TPP migrated only %d pages in 2s of steady state; expected continuous churn",
			late-early)
	}
}

func TestHeuristicGrowsOnLatency(t *testing.T) {
	rig := newRig(t, mem.TierSMem)
	h := NewHeuristic()
	h.IntervalSeconds = 0.2 // fast decisions for the test
	if err := h.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	// Overdrive the LC workload: latency rises, the controller must grow
	// the LC partition from zero.
	for i := 0; i < 80; i++ {
		rig.tickLoad(t, h, 1.2)
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got == 0 {
		t.Error("Heuristic never grew the LC partition under overload")
	}
	if h.Name() != "Heuristic" || h.LCStall() != 0 {
		t.Error("Heuristic metadata wrong")
	}
}

func TestHeuristicShrinksWhenIdle(t *testing.T) {
	rig := newRig(t, mem.TierFMem) // LC starts with FMem
	h := NewHeuristic()
	h.IntervalSeconds = 0.2
	if err := h.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	start := rig.sys.FMemPages(rig.lc.ID())
	for i := 0; i < 100; i++ {
		rig.tickLoad(t, h, 0.1) // light load: P99 far below the SLO
	}
	if got := rig.sys.FMemPages(rig.lc.ID()); got >= start {
		t.Errorf("Heuristic did not release FMem at light load: %d -> %d", start, got)
	}
}

func TestHeuristicValidation(t *testing.T) {
	rig := newRig(t, mem.TierSMem)
	h := NewHeuristic()
	h.UpperFrac, h.LowerFrac = 0.4, 0.8 // inverted
	if err := h.Init(rig.ctx); err == nil {
		t.Error("inverted thresholds accepted")
	}
	rig.ctx.LC = nil
	if err := NewHeuristic().Init(rig.ctx); err == nil {
		t.Error("Heuristic without LC accepted")
	}
}

func TestVTMMProportionalToHotSet(t *testing.T) {
	// PR's concentrated accesses produce a small hot set; XSBench's
	// uniform accesses make nearly every page cross the threshold, so
	// vTMM hands XSBench the larger partition (its defining behavior).
	rig := newRigRate(t, mem.TierSMem, 2e-5)
	v := NewVTMM()
	v.IntervalSeconds = 0.5
	if err := v.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rig.tick(t, v)
	}
	pr := rig.sys.FMemPages(rig.bes[0].ID())
	xs := rig.sys.FMemPages(rig.bes[1].ID())
	if pr+xs == 0 {
		t.Fatal("vTMM allocated nothing to the BEs")
	}
	if v.Name() != "vTMM" || v.LCStall() != 0 {
		t.Error("vTMM metadata wrong")
	}
	// Targets never oversubscribe capacity.
	total := 0
	for _, pages := range v.targets {
		total += pages
	}
	if total > rig.sys.FMemCapacityPages() {
		t.Errorf("vTMM targets oversubscribe: %d > %d", total, rig.sys.FMemCapacityPages())
	}
}

func TestVTMMEvenSplitWithoutHotPages(t *testing.T) {
	rig := newRig(t, mem.TierSMem)
	v := NewVTMM()
	v.HotThreshold = 1 << 40 // nothing qualifies
	if err := v.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	rig.ctx.Now = 10 // force a repartition immediately
	if err := v.Tick(rig.ctx); err != nil {
		t.Fatal(err)
	}
	want := rig.sys.FMemCapacityPages() / 3
	for id, pages := range v.targets {
		if pages != want {
			t.Errorf("workload %d target = %d, want even split %d", id, pages, want)
		}
	}
}

// tickLoad advances the rig at a specific LC load fraction.
func (r *testRig) tickLoad(t *testing.T, p Policy, loadFrac float64) {
	t.Helper()
	r.sys.BeginTick(100 * time.Millisecond)
	r.sampler.BeginTick()
	lcRes, err := r.lc.Tick(loadFrac, 0.1, p.LCStall())
	if err != nil {
		t.Fatal(err)
	}
	r.sampler.RecordAccesses(r.lc.ID(), r.lc.Dist(), lcRes.Accesses)
	for i, be := range r.bes {
		beRes, err := be.Tick(0.1)
		if err != nil {
			t.Fatal(err)
		}
		r.sampler.RecordAccesses(be.ID(), be.Dist(), beRes.Accesses)
		r.ctx.BEResults[i] = beRes
	}
	r.ctx.LCResult = lcRes
	r.ctx.Now = r.now
	if err := p.Tick(r.ctx); err != nil {
		t.Fatal(err)
	}
	r.now += 0.1
}

func TestRegionMEMTISPlacesHotRegions(t *testing.T) {
	rig := newRigRate(t, mem.TierSMem, 2e-5)
	p := NewRegionMEMTIS()
	p.AggInterval = 0.3
	if err := p.Init(rig.ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rig.tick(t, p)
	}
	// FMem gets used.
	used := rig.sys.FMemCapacityPages() - rig.sys.FMemFreePages()
	if used < rig.sys.FMemCapacityPages()/2 {
		t.Errorf("region placement used only %d FMem pages", used)
	}
	// Bookkeeping stays bounded: far fewer regions than pages.
	if got := p.TotalRegions(); got == 0 || got > rig.sys.NumPages() {
		t.Errorf("TotalRegions = %d (pages %d)", got, rig.sys.NumPages())
	}
	// PR (skewed) must beat XSBench (uniform) for residency, like
	// per-page MEMTIS.
	pr := rig.sys.FMemPages(rig.bes[0].ID())
	xs := rig.sys.FMemPages(rig.bes[1].ID())
	if pr <= xs {
		t.Errorf("region MEMTIS gave PR %d pages vs XSBench %d; want PR favored", pr, xs)
	}
	if p.Name() != "MEMTIS (regions)" || p.LCStall() != 0 {
		t.Error("RegionMEMTIS metadata wrong")
	}
}
