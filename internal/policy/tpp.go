package policy

import (
	"github.com/tieredmem/mtat/internal/hist"
	"github.com/tieredmem/mtat/internal/mem"
)

// TPP reimplements the TPP baseline [Maruf et al., ASPLOS'23] as the paper
// characterizes it (§5): active/inactive list management where NUMA hint
// faults promote recently touched SMem pages into FMem and demotion keeps
// a free-page headroom by evicting the coldest FMem pages. Hint faults
// fire on the request's critical path, so LC requests touching SMem pages
// pay a fault stall — which is why the paper observes TPP's LC latency
// falling below even SMEM_ALL (§5.1).
type TPP struct {
	// HintFaultFraction is the fraction of SMem accesses that trip a
	// NUMA hint fault (TPP samples by periodically poisoning PTEs).
	HintFaultFraction float64
	// FaultCost is the stall per hint fault (trap, migration decision,
	// possible TLB shootdown).
	FaultCost float64
	// Headroom is the fraction of FMem kept free by proactive demotion.
	Headroom float64
	// AgingInterval is how often (seconds) access counts are halved.
	AgingInterval float64

	lastAge float64
	stall   float64
	h       hist.Histogram
	promote []mem.PageID
	demote  []mem.PageID
	active  map[mem.PageID]struct{}
}

var _ Policy = (*TPP)(nil)

// NewTPP returns a TPP baseline with defaults calibrated so that hint
// faults cost the LC workload enough service time that — even with the
// partial FMem residency fault-driven promotion earns it — its sustainable
// load lands below SMEM_ALL (~0.70x vs ~0.76x of FMEM_ALL), matching
// Figure 8 and the paper's observation that TPP's request-path fault
// handling makes it the worst performer despite allocating FMem to LC.
func NewTPP() *TPP {
	return &TPP{
		HintFaultFraction: 0.02,
		FaultCost:         9e-6,
		Headroom:          0.02,
		AgingInterval:     2,
		active:            make(map[mem.PageID]struct{}),
	}
}

// Name implements Policy.
func (t *TPP) Name() string { return "TPP" }

// Init implements Policy.
func (t *TPP) Init(*Context) error { return nil }

// Tick implements Policy.
func (t *TPP) Tick(ctx *Context) error {
	sys := ctx.Sys
	ids := workloadIDs(ctx)

	// Fault-driven promotion: every SMem page sampled this tick is a
	// promotion candidate, newest-touched first. Sampled pages — in
	// either tier — form the active list and are exempt from demotion.
	t.promote = t.promote[:0]
	clear(t.active)
	for _, id := range ids {
		for _, pid := range ctx.Sampler.TickPages(id) {
			t.active[pid] = struct{}{}
			if !sys.PageInFMem(pid) {
				t.promote = append(t.promote, pid)
			}
		}
	}

	// Demotion keeps headroom: evict the coldest FMem pages to make room
	// for the promotions that can actually land this tick (bounded by
	// migration bandwidth) plus the free watermark.
	expected := len(t.promote)
	if budget := sys.MigrationBudgetPages(); expected > budget {
		expected = budget
	}
	want := expected + int(t.Headroom*float64(sys.FMemCapacityPages()))
	deficit := want - sys.FMemFreePages()
	t.demote = t.demote[:0]
	if deficit > 0 {
		t.h.Reset()
		for _, id := range ids {
			for _, pid := range sys.WorkloadPages(id) {
				if !sys.PageInFMem(pid) {
					continue
				}
				if _, isActive := t.active[pid]; isActive {
					continue // recently touched: on the active list
				}
				t.h.Add(pid, sys.PageHotness(pid))
			}
		}
		t.demote = t.h.Coldest(t.demote, deficit)
	}
	sys.Exchange(t.promote, t.demote)

	// LC hint-fault stall: SMem touches occasionally trap. The expected
	// per-request stall is touches x missRatio x faultFraction x cost.
	t.stall = 0
	if ctx.LC != nil {
		miss := 1 - ctx.LC.HitRatio()
		t.stall = float64(ctx.LC.Config().MemTouches) * miss * t.HintFaultFraction * t.FaultCost
	}

	if ctx.Now-t.lastAge >= t.AgingInterval {
		sys.AgeHotness()
		t.lastAge = ctx.Now
	}
	return nil
}

// LCStall implements Policy.
func (t *TPP) LCStall() float64 { return t.stall }
