// Package policy defines the tiered-memory management policy interface and
// the paper's comparison baselines (§5): the static FMEM_ALL / SMEM_ALL
// placements and the state-of-the-art page-placement systems MEMTIS
// (global access histogram) and TPP (fault-driven promotion with
// active/inactive lists). MTAT itself lives in internal/core and
// implements the same interface.
package policy

import (
	"github.com/tieredmem/mtat/internal/flight"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/pebs"
	"github.com/tieredmem/mtat/internal/telemetry"
	"github.com/tieredmem/mtat/internal/workload"
)

// Context carries the per-tick view a policy acts on. The simulator owns
// the context and mutates it between ticks.
type Context struct {
	// Sys is the tiered memory system; policies migrate pages through it
	// within the tick's bandwidth budget.
	Sys *mem.System
	// Sampler provides the PEBS-sampled access statistics.
	Sampler *pebs.Sampler
	// Now is the simulation time in seconds; DT is the tick length.
	Now float64
	DT  float64
	// LC is the latency-critical workload (nil in BE-only scenarios).
	LC *workload.LC
	// BEs are the co-located best-effort workloads.
	BEs []*workload.BE
	// LCResult is the LC workload's result for the tick that just ran.
	LCResult workload.TickResult
	// BEResults are the BE results for the tick that just ran, indexed
	// like BEs.
	BEResults []workload.BETickResult
	// Telemetry is the observability sink, nil when none is attached.
	// Policies resolve metric handles from it at Init; every handle is
	// nil-safe, so instrumentation is a no-op without a sink.
	Telemetry *telemetry.Telemetry
	// Flight is the run's flight recorder, nil when none is attached.
	// The runner records the core event stream itself; policies may
	// record additional events (Record is nil-safe).
	Flight *flight.Recorder
}

// Policy is a tiered-memory page placement/partitioning policy.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Init prepares the policy after all workloads are attached. The
	// context carries no tick results yet.
	Init(ctx *Context) error
	// Tick lets the policy observe the tick's statistics and migrate
	// pages. It runs after workload progress and PEBS sampling.
	Tick(ctx *Context) error
	// LCStall returns the additional per-request service stall (seconds)
	// the policy currently imposes on the LC workload — nonzero only for
	// fault-driven policies like TPP, whose promotions happen on the
	// request's critical path.
	LCStall() float64
}

// workloadIDs returns the IDs of every workload in the context, LC first.
func workloadIDs(ctx *Context) []mem.WorkloadID {
	ids := make([]mem.WorkloadID, 0, len(ctx.BEs)+1)
	if ctx.LC != nil {
		ids = append(ids, ctx.LC.ID())
	}
	for _, be := range ctx.BEs {
		ids = append(ids, be.ID())
	}
	return ids
}
