package policy

import (
	"github.com/tieredmem/mtat/internal/hist"
	"github.com/tieredmem/mtat/internal/mem"
	"github.com/tieredmem/mtat/internal/telemetry"
)

// pool manages a set of workloads sharing a hotness-ranked FMem budget: it
// computes the globally hottest `capacity` pages across the workloads and
// exchanges pages so those become FMem-resident, within the tick's
// migration bandwidth. This is the shared mechanism behind MEMTIS's global
// placement and the BE-side management of the static baselines.
type pool struct {
	h       hist.Histogram
	promote []mem.PageID
	demote  []mem.PageID
	hot     []mem.PageID // HotSplitInto scratch
	cold    []mem.PageID

	// Migration traffic counters shared by every pool-based baseline
	// (nil-safe no-ops until attach).
	promotedPages *telemetry.Counter
	demotedPages  *telemetry.Counter
}

// attach resolves the pool's traffic counters from the context's sink
// (policy_promoted_pages_total / policy_demoted_pages_total). Call from
// the owning policy's Init.
func (p *pool) attach(ctx *Context) {
	reg := ctx.Telemetry.Metrics()
	p.promotedPages = reg.Counter("policy_promoted_pages_total")
	p.demotedPages = reg.Counter("policy_demoted_pages_total")
}

// record folds one exchange into the traffic counters and passes the
// counts through.
func (p *pool) record(promoted, demoted int) (int, int) {
	p.promotedPages.Add(int64(promoted))
	p.demotedPages.Add(int64(demoted))
	return promoted, demoted
}

// manage drives the pool toward "hottest capacity pages resident" for the
// given workloads and returns (promoted, demoted) page counts.
func (p *pool) manage(sys *mem.System, ids []mem.WorkloadID, capacity int) (int, int) {
	p.h.Reset()
	for _, id := range ids {
		for _, pid := range sys.WorkloadPages(id) {
			p.h.Add(pid, sys.PageHotness(pid))
		}
	}
	p.hot, p.cold = p.h.HotSplitInto(p.hot, p.cold, capacity)
	p.promote = p.promote[:0]
	for _, pid := range p.hot {
		if !sys.PageInFMem(pid) {
			p.promote = append(p.promote, pid)
		}
	}
	// cold is ordered hottest-first; demote coldest first so the cheapest
	// pages leave FMem ahead of warmer ones when bandwidth runs out.
	p.demote = p.demote[:0]
	for i := len(p.cold) - 1; i >= 0; i-- {
		if sys.PageInFMem(p.cold[i]) {
			p.demote = append(p.demote, p.cold[i])
		}
	}
	return p.record(sys.Exchange(p.promote, p.demote))
}

// pin drives a single workload toward exactly `target` FMem-resident
// pages, promoting its hottest SMem pages or demoting its coldest FMem
// pages. When FMem lacks free space for a grow, the coldest FMem pages of
// the victim workloads are demoted to make room. Returns (promoted,
// demoted).
func (p *pool) pin(sys *mem.System, id mem.WorkloadID, target int, victims ...mem.WorkloadID) (int, int) {
	cur := sys.FMemPages(id)
	switch {
	case cur < target:
		p.h.Reset()
		for _, pid := range sys.WorkloadPages(id) {
			if !sys.PageInFMem(pid) {
				p.h.Add(pid, sys.PageHotness(pid))
			}
		}
		p.promote = p.h.Hottest(p.promote[:0], target-cur)
		p.demote = p.demote[:0]
		if need := len(p.promote) - sys.FMemFreePages(); need > 0 && len(victims) > 0 {
			p.h.Reset()
			for _, vid := range victims {
				for _, pid := range sys.WorkloadPages(vid) {
					if sys.PageInFMem(pid) {
						p.h.Add(pid, sys.PageHotness(pid))
					}
				}
			}
			p.demote = p.h.Coldest(p.demote, need)
		}
		return p.record(sys.Exchange(p.promote, p.demote))
	case cur > target:
		p.h.Reset()
		for _, pid := range sys.WorkloadPages(id) {
			if sys.PageInFMem(pid) {
				p.h.Add(pid, sys.PageHotness(pid))
			}
		}
		p.demote = p.h.Coldest(p.demote[:0], cur-target)
		return p.record(sys.Exchange(nil, p.demote))
	default:
		return 0, 0
	}
}
