package policy

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/mem"
)

// Heuristic is a PARTIES/Heracles-style latency-feedback controller
// [Chen et al., ASPLOS'19; Lo et al., ISCA'15], included as the natural
// non-learning comparator to MTAT's RL partitioner (the paper's §6 relates
// MTAT to exactly this family): the LC workload's FMem partition grows by
// a fixed step while its P99 sits above an upper latency threshold and
// shrinks by a smaller step while it sits below a lower threshold; the
// remaining FMem is shared among BE workloads by global hotness.
//
// Unlike MTAT's agent it has no load signal, so it cannot distinguish
// "latency is low because allocation is ample" from "latency is low
// because load is light" — it oscillates between slack and violation
// whenever the load moves faster than its feedback loop.
type Heuristic struct {
	// UpperFrac and LowerFrac are the grow/shrink thresholds as
	// fractions of the SLO.
	UpperFrac float64
	LowerFrac float64
	// GrowPages and ShrinkPages are the per-decision step sizes.
	GrowPages   int
	ShrinkPages int
	// IntervalSeconds is the decision cadence.
	IntervalSeconds float64
	// AgingInterval is how often (seconds) access counts are halved.
	AgingInterval float64

	slo          float64
	lcTarget     int
	lastDecision float64
	lastAge      float64
	pool         pool
	bePool       pool
	beIDs        []mem.WorkloadID
}

var _ Policy = (*Heuristic)(nil)

// NewHeuristic returns a latency-feedback controller with thresholds at
// 80%/40% of the SLO and step sizes sized like MTAT's action bound.
func NewHeuristic() *Heuristic {
	return &Heuristic{
		UpperFrac:       0.8,
		LowerFrac:       0.4,
		IntervalSeconds: 2.5,
		AgingInterval:   2,
	}
}

// Name implements Policy.
func (h *Heuristic) Name() string { return "Heuristic" }

// Init implements Policy.
func (h *Heuristic) Init(ctx *Context) error {
	if ctx.LC == nil {
		return fmt.Errorf("policy: Heuristic requires an LC workload")
	}
	if h.UpperFrac <= h.LowerFrac || h.LowerFrac <= 0 {
		return fmt.Errorf("policy: Heuristic thresholds must satisfy 0 < lower < upper")
	}
	h.slo = ctx.LC.Config().SLOSeconds
	h.lcTarget = ctx.Sys.FMemPages(ctx.LC.ID())
	h.pool.attach(ctx)
	h.bePool.attach(ctx)
	if h.GrowPages == 0 {
		// Default the step to the migration-bandwidth bound M*t/2, like
		// MTAT's action range (Eq. 1).
		bytes := float64(ctx.Sys.Config().MigrationBandwidth) * h.IntervalSeconds / 2
		h.GrowPages = int(bytes / float64(ctx.Sys.Config().PageSize))
		if h.GrowPages < 1 {
			h.GrowPages = 1
		}
	}
	if h.ShrinkPages == 0 {
		h.ShrinkPages = h.GrowPages / 4
		if h.ShrinkPages < 1 {
			h.ShrinkPages = 1
		}
	}
	h.beIDs = h.beIDs[:0]
	for _, be := range ctx.BEs {
		h.beIDs = append(h.beIDs, be.ID())
	}
	h.lastDecision = 0
	h.lastAge = 0
	return nil
}

// Tick implements Policy.
func (h *Heuristic) Tick(ctx *Context) error {
	sys := ctx.Sys
	lcID := ctx.LC.ID()

	if ctx.Now-h.lastDecision >= h.IntervalSeconds {
		p99 := ctx.LCResult.P99
		switch {
		case p99 > h.UpperFrac*h.slo:
			h.lcTarget += h.GrowPages
		case p99 < h.LowerFrac*h.slo:
			h.lcTarget -= h.ShrinkPages
		}
		if h.lcTarget < 0 {
			h.lcTarget = 0
		}
		if cap := sys.FMemCapacityPages(); h.lcTarget > cap {
			h.lcTarget = cap
		}
		if total := sys.TotalPages(lcID); h.lcTarget > total {
			h.lcTarget = total
		}
		h.lastDecision = ctx.Now
	}

	h.pool.pin(sys, lcID, h.lcTarget, h.beIDs...)
	if len(h.beIDs) > 0 {
		remaining := sys.FMemCapacityPages() - sys.FMemPages(lcID)
		h.bePool.manage(sys, h.beIDs, remaining)
	}
	if ctx.Now-h.lastAge >= h.AgingInterval {
		sys.AgeHotness()
		h.lastAge = ctx.Now
	}
	return nil
}

// LCStall implements Policy.
func (h *Heuristic) LCStall() float64 { return 0 }
