package policy

import (
	"github.com/tieredmem/mtat/internal/hist"
	"github.com/tieredmem/mtat/internal/mem"
)

// VTMM reimplements the vTMM baseline [Sha et al., EuroSys'23], which the
// paper's related-work section (§6) positions against MTAT: each
// workload's "hot set size" is the number of its pages whose access count
// exceeds a base threshold, and FMem is divided among workloads in
// proportion to their hot set sizes. Within each resulting partition the
// hottest pages are kept resident, exactly like PP-E's refinement.
//
// vTMM is partitioned like MTAT but load-blind like MEMTIS: a bursty LC
// tenant with low access frequency has a small hot set and therefore earns
// a small partition, so it inherits the same SLO failure mode.
type VTMM struct {
	// HotThreshold is the per-interval access count above which a page
	// counts toward the hot set.
	HotThreshold uint64
	// IntervalSeconds is the repartitioning cadence.
	IntervalSeconds float64
	// AgingInterval is how often (seconds) access counts are halved.
	AgingInterval float64

	lastDecision float64
	lastAge      float64
	targets      map[mem.WorkloadID]int
	h            hist.Histogram
	builder      hist.Builder
	promote      []mem.PageID
	demote       []mem.PageID
	hot          []mem.PageID // HotSplitInto scratch
	cold         []mem.PageID
}

var _ Policy = (*VTMM)(nil)

// NewVTMM returns a vTMM baseline with a hot threshold of 2 sampled
// accesses per interval.
func NewVTMM() *VTMM {
	return &VTMM{
		HotThreshold:    2,
		IntervalSeconds: 2.5,
		AgingInterval:   2,
		targets:         make(map[mem.WorkloadID]int),
	}
}

// Name implements Policy.
func (v *VTMM) Name() string { return "vTMM" }

// Init implements Policy.
func (v *VTMM) Init(ctx *Context) error {
	clear(v.targets)
	for _, id := range workloadIDs(ctx) {
		v.targets[id] = ctx.Sys.FMemPages(id)
	}
	v.lastDecision = 0
	v.lastAge = 0
	return nil
}

// Tick implements Policy.
func (v *VTMM) Tick(ctx *Context) error {
	sys := ctx.Sys
	ids := workloadIDs(ctx)

	if ctx.Now-v.lastDecision >= v.IntervalSeconds {
		v.repartition(sys, ids)
		v.lastDecision = ctx.Now
	}

	// Enforce each partition with hotness refinement (shared shape with
	// PP-E's Fig. 4b step).
	for _, id := range ids {
		v.refine(sys, id, v.targets[id])
	}

	if ctx.Now-v.lastAge >= v.AgingInterval {
		sys.AgeHotness()
		v.lastAge = ctx.Now
	}
	return nil
}

// repartition sizes each workload's partition proportionally to its hot
// set size.
func (v *VTMM) repartition(sys *mem.System, ids []mem.WorkloadID) {
	hotSizes := make([]int, len(ids))
	totalHot := 0
	for i, id := range ids {
		n := 0
		for _, pid := range sys.WorkloadPages(id) {
			if sys.PageHotness(pid) >= v.HotThreshold {
				n++
			}
		}
		hotSizes[i] = n
		totalHot += n
	}
	capacity := sys.FMemCapacityPages()
	if totalHot == 0 {
		// No hot pages anywhere: split evenly.
		for _, id := range ids {
			v.targets[id] = capacity / len(ids)
		}
		return
	}
	assigned := 0
	for i, id := range ids {
		share := capacity * hotSizes[i] / totalHot
		if max := sys.TotalPages(id); share > max {
			share = max
		}
		v.targets[id] = share
		assigned += share
	}
	// Hand leftover capacity (rounding, per-workload caps) to the largest
	// hot set that can still use it.
	for leftover := capacity - assigned; leftover > 0; {
		best, bestHot := -1, -1
		for i, id := range ids {
			if v.targets[id] < sys.TotalPages(id) && hotSizes[i] > bestHot {
				best, bestHot = i, hotSizes[i]
			}
		}
		if best < 0 {
			break
		}
		room := sys.TotalPages(ids[best]) - v.targets[ids[best]]
		grant := leftover
		if grant > room {
			grant = room
		}
		v.targets[ids[best]] += grant
		leftover -= grant
	}
}

// refine keeps the hottest `target` pages of one workload resident.
func (v *VTMM) refine(sys *mem.System, id mem.WorkloadID, target int) {
	_, _, unified := v.builder.Build(sys, id)
	v.hot, v.cold = unified.HotSplitInto(v.hot, v.cold, target)
	v.promote = v.promote[:0]
	for _, pid := range v.hot {
		if !sys.PageInFMem(pid) {
			v.promote = append(v.promote, pid)
		}
	}
	v.demote = v.demote[:0]
	for i := len(v.cold) - 1; i >= 0; i-- {
		if sys.PageInFMem(v.cold[i]) {
			v.demote = append(v.demote, v.cold[i])
		}
	}
	sys.Exchange(v.promote, v.demote)
}

// LCStall implements Policy.
func (v *VTMM) LCStall() float64 { return 0 }
