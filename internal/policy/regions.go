package policy

import (
	"fmt"
	"sort"

	"github.com/tieredmem/mtat/internal/damon"
	"github.com/tieredmem/mtat/internal/mem"
)

// RegionMEMTIS is MEMTIS's global-hotness placement driven by DAMON-style
// region monitoring instead of per-page counters: each workload gets an
// adaptive region monitor (bounded bookkeeping), sampled accesses feed the
// monitors, and placement keeps the pages of the globally hottest regions
// in FMem. The "monitoring" experiment compares it against per-page
// MEMTIS to quantify the fidelity/bookkeeping trade-off the paper's
// related work (Telescope/DAMON) navigates.
type RegionMEMTIS struct {
	// Damon configures each workload's monitor.
	Damon damon.Config
	// AggInterval is the region aggregation cadence in seconds.
	AggInterval float64

	monitors map[mem.WorkloadID]*damon.Monitor
	lastAgg  float64
	promote  []mem.PageID
	demote   []mem.PageID
}

var _ Policy = (*RegionMEMTIS)(nil)

// NewRegionMEMTIS returns a region-monitored MEMTIS with DAMON defaults.
func NewRegionMEMTIS() *RegionMEMTIS {
	return &RegionMEMTIS{
		Damon:       damon.DefaultConfig(),
		AggInterval: 1,
		monitors:    make(map[mem.WorkloadID]*damon.Monitor),
	}
}

// Name implements Policy.
func (p *RegionMEMTIS) Name() string { return "MEMTIS (regions)" }

// Init implements Policy: one monitor per workload over its (contiguous)
// page range.
func (p *RegionMEMTIS) Init(ctx *Context) error {
	clear(p.monitors)
	for _, id := range workloadIDs(ctx) {
		pages := ctx.Sys.WorkloadPages(id)
		if len(pages) == 0 {
			return fmt.Errorf("policy: workload %d has no pages", id)
		}
		cfg := p.Damon
		cfg.Seed += int64(id)
		m, err := damon.NewMonitor(pages[0], pages[len(pages)-1]+1, cfg)
		if err != nil {
			return err
		}
		p.monitors[id] = m
	}
	p.lastAgg = 0
	return nil
}

// Tick implements Policy.
func (p *RegionMEMTIS) Tick(ctx *Context) error {
	sys := ctx.Sys
	ids := workloadIDs(ctx)

	// Feed this tick's sampled pages into the monitors. (At realistic
	// sampling rates per-page counts within one tick are almost always
	// 0 or 1, so unique-page feeding approximates count feeding.)
	for _, id := range ids {
		mon := p.monitors[id]
		for _, pid := range ctx.Sampler.TickPages(id) {
			mon.RecordAccess(pid)
		}
	}
	if ctx.Now-p.lastAgg >= p.AggInterval {
		for _, mon := range p.monitors {
			mon.Aggregate()
		}
		p.lastAgg = ctx.Now
	}

	// Global placement: rank all regions by per-page smoothed rate, mark
	// the top pages (up to FMem capacity) as the hot set.
	type scored struct {
		rate  float64
		start mem.PageID
		end   mem.PageID
	}
	var regions []scored
	for _, id := range ids {
		for _, r := range p.monitors[id].Regions() {
			rate := 0.0
			if r.Len() > 0 {
				rate = r.Smoothed / float64(r.Len())
			}
			regions = append(regions, scored{rate, r.Start, r.End})
		}
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].rate > regions[j].rate })

	capacity := sys.FMemCapacityPages()
	p.promote = p.promote[:0]
	p.demote = p.demote[:0]
	filled := 0
	for _, r := range regions {
		for pid := r.start; pid < r.end; pid++ {
			if filled < capacity {
				if !sys.PageInFMem(pid) {
					p.promote = append(p.promote, pid)
				}
				filled++
			} else if sys.PageInFMem(pid) {
				p.demote = append(p.demote, pid)
			}
		}
	}
	// Demote coldest first: p.demote was built hottest-first, so reverse.
	for i, j := 0, len(p.demote)-1; i < j; i, j = i+1, j-1 {
		p.demote[i], p.demote[j] = p.demote[j], p.demote[i]
	}
	sys.Exchange(p.promote, p.demote)
	return nil
}

// LCStall implements Policy.
func (p *RegionMEMTIS) LCStall() float64 { return 0 }

// TotalRegions returns the monitors' combined bookkeeping footprint.
func (p *RegionMEMTIS) TotalRegions() int {
	n := 0
	for _, m := range p.monitors {
		n += m.NumRegions()
	}
	return n
}
