package policy

// MEMTIS reimplements the MEMTIS baseline [Lee et al., SOSP'23] as the
// paper describes it (§5): a single access histogram spans every workload,
// and the globally hottest pages are kept in FMem regardless of which
// tenant owns them. Because best-effort workloads generate far denser
// access streams than latency-critical ones, LC pages systematically lose
// this competition — the failure mode §2.2 demonstrates.
type MEMTIS struct {
	// AgingInterval is how often (seconds) access counts are halved.
	AgingInterval float64
	lastAge       float64
	pool          pool
}

var _ Policy = (*MEMTIS)(nil)

// NewMEMTIS returns a MEMTIS baseline with the default 2 s aging interval.
func NewMEMTIS() *MEMTIS { return &MEMTIS{AgingInterval: 2} }

// Name implements Policy.
func (m *MEMTIS) Name() string { return "MEMTIS" }

// Init implements Policy.
func (m *MEMTIS) Init(ctx *Context) error {
	m.pool.attach(ctx)
	return nil
}

// Tick implements Policy: one global hotness-ranked pool over all
// workloads, sized to the whole of FMem.
func (m *MEMTIS) Tick(ctx *Context) error {
	ids := workloadIDs(ctx)
	if len(ids) == 0 {
		return nil
	}
	m.pool.manage(ctx.Sys, ids, ctx.Sys.FMemCapacityPages())
	if ctx.Now-m.lastAge >= m.AgingInterval {
		ctx.Sys.AgeHotness()
		m.lastAge = ctx.Now
	}
	return nil
}

// LCStall implements Policy. MEMTIS migrates pages off the request path
// (a background kthread), so it adds no per-request stall.
func (m *MEMTIS) LCStall() float64 { return 0 }
