package policy

import (
	"fmt"

	"github.com/tieredmem/mtat/internal/mem"
)

// Static implements the paper's FMEM_ALL and SMEM_ALL baselines (§5): the
// LC workload is pinned entirely into one tier, and whatever FMem remains
// is hotness-managed across the BE workloads.
type Static struct {
	lcTier   mem.Tier
	interval float64
	lastAge  float64
	pool     pool
	bePool   pool
	beIDs    []mem.WorkloadID
}

var _ Policy = (*Static)(nil)

// NewFMemAll returns the FMEM_ALL baseline: the LC workload exclusively
// occupies FMem (up to capacity), BE workloads share the rest.
func NewFMemAll() *Static { return &Static{lcTier: mem.TierFMem, interval: 1} }

// NewSMemAll returns the SMEM_ALL baseline: the LC workload is confined to
// SMem and BE workloads share all of FMem.
func NewSMemAll() *Static { return &Static{lcTier: mem.TierSMem, interval: 1} }

// Name implements Policy.
func (s *Static) Name() string {
	if s.lcTier == mem.TierFMem {
		return "FMEM_ALL"
	}
	return "SMEM_ALL"
}

// Init implements Policy.
func (s *Static) Init(ctx *Context) error {
	if ctx.LC == nil {
		return fmt.Errorf("policy: %s requires an LC workload", s.Name())
	}
	s.beIDs = s.beIDs[:0]
	for _, be := range ctx.BEs {
		s.beIDs = append(s.beIDs, be.ID())
	}
	s.lastAge = 0
	s.pool.attach(ctx)
	s.bePool.attach(ctx)
	return nil
}

// Tick implements Policy.
func (s *Static) Tick(ctx *Context) error {
	sys := ctx.Sys
	lcID := ctx.LC.ID()
	lcTarget := 0
	if s.lcTier == mem.TierFMem {
		lcTarget = sys.TotalPages(lcID)
		if cap := sys.FMemCapacityPages(); lcTarget > cap {
			lcTarget = cap
		}
	}
	s.pool.pin(sys, lcID, lcTarget, s.beIDs...)

	// BE workloads share the remaining capacity by global hotness.
	if len(s.beIDs) > 0 {
		remaining := sys.FMemCapacityPages() - sys.FMemPages(lcID)
		s.bePool.manage(sys, s.beIDs, remaining)
	}

	if ctx.Now-s.lastAge >= s.interval {
		sys.AgeHotness()
		s.lastAge = ctx.Now
	}
	return nil
}

// LCStall implements Policy; static placement adds no request-path stalls.
func (s *Static) LCStall() float64 { return 0 }
