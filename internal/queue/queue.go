// Package queue models the latency-critical workload's request queue: an
// open-loop M/G/c service station evaluated tick by tick. Within a tick the
// stationary M/G/c approximation (Erlang-C waiting probability with the
// Allen-Cunneen correction for general service times) yields the waiting
// time distribution; across ticks a fluid backlog carries overload, so
// sustained arrival rates beyond capacity produce the diverging tail
// latencies ("knees") of Figure 1 and the SLO violations of Figure 5.
package queue

import (
	"fmt"
	"math"
	"math/rand"
)

// mcDraws is the number of Monte Carlo sojourn draws per tick used to
// estimate latency quantiles.
const mcDraws = 2048

// Model is the per-workload queue state. It is not safe for concurrent use.
type Model struct {
	servers  int
	rng      *rand.Rand
	backlog  float64 // requests queued at tick boundary (overload carry)
	maxDelay float64 // client timeout bound on queueing delay; 0 = none
	ticks    int64   // cumulative Tick calls
	draws    int64   // cumulative Monte Carlo sojourn draws
	scratch  []float64
	// refQuantiles selects the original full-sort quantile path; the
	// default quickselect path returns the same order statistics.
	refQuantiles bool
}

// SetReferenceQuantiles switches per-tick quantile extraction to the
// original full-sort implementation. Both paths return the identical
// order statistics; the differential harness uses this as the retained
// reference path.
func (m *Model) SetReferenceQuantiles(ref bool) { m.refQuantiles = ref }

// NewModel returns a queue with the given number of servers (the cores or
// threads serving the LC workload), seeded deterministically.
func NewModel(servers int, seed int64) (*Model, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("queue: servers must be > 0, got %d", servers)
	}
	return &Model{
		servers: servers,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// SetClientTimeout bounds the queueing delay: requests that would wait
// longer than maxDelay seconds are dropped by the client (open-loop load
// generators like Mutilate and YCSB time requests out rather than queueing
// forever). Dropped requests count as SLO violations. maxDelay <= 0
// disables the bound.
func (m *Model) SetClientTimeout(maxDelay float64) {
	m.maxDelay = maxDelay
}

// Servers returns the number of servers.
func (m *Model) Servers() int { return m.servers }

// Ticks returns the cumulative number of Tick calls since construction.
func (m *Model) Ticks() int64 { return m.ticks }

// Draws returns the cumulative number of Monte Carlo sojourn draws since
// construction (mcDraws per tick).
func (m *Model) Draws() int64 { return m.draws }

// Backlog returns the number of requests carried over from previous ticks.
func (m *Model) Backlog() float64 { return m.backlog }

// ResetBacklog clears carried-over requests (used between experiments).
func (m *Model) ResetBacklog() { m.backlog = 0 }

// TickResult reports the queue behaviour over one tick.
type TickResult struct {
	// Completed is the number of requests served during the tick.
	Completed float64
	// Offered is the number of requests that arrived during the tick.
	Offered float64
	// P50, P99 and Mean are sojourn-time statistics in seconds for
	// requests arriving this tick.
	P50  float64
	P99  float64
	Mean float64
	// Utilization is the offered load over capacity (can exceed 1).
	Utilization float64
	// Backlog is the queue length at the end of the tick.
	Backlog float64
	// Dropped is the number of requests abandoned this tick because they
	// would exceed the client timeout (SetClientTimeout).
	Dropped float64
	// ViolationFrac is the fraction of this tick's requests (served and
	// dropped) whose sojourn exceeded the slo passed to Tick, with drops
	// always counting as violations (0 when slo <= 0).
	ViolationFrac float64
}

// ServiceDist describes the per-request service time distribution for a
// tick: Mean and the squared coefficient of variation (variance/mean²).
// Sample must draw one service time consistent with those moments.
type ServiceDist struct {
	Mean   float64
	CV2    float64
	Sample func(rng *rand.Rand) float64
}

// DeterministicService returns a ServiceDist for a fixed service time.
func DeterministicService(s float64) ServiceDist {
	return ServiceDist{
		Mean:   s,
		CV2:    0,
		Sample: func(*rand.Rand) float64 { return s },
	}
}

// ExponentialService returns a ServiceDist with exponential service times.
func ExponentialService(mean float64) ServiceDist {
	return ServiceDist{
		Mean:   mean,
		CV2:    1,
		Sample: func(rng *rand.Rand) float64 { return rng.ExpFloat64() * mean },
	}
}

// Tick advances the queue by dt seconds with Poisson arrivals at
// arrivalRate (requests/second) and the given service distribution, and
// returns latency statistics for the tick. slo (seconds) is used only to
// estimate ViolationFrac; pass 0 to skip.
func (m *Model) Tick(arrivalRate, dt float64, svc ServiceDist, slo float64) (TickResult, error) {
	if dt <= 0 {
		return TickResult{}, fmt.Errorf("queue: dt must be > 0, got %g", dt)
	}
	if arrivalRate < 0 {
		return TickResult{}, fmt.Errorf("queue: arrivalRate must be >= 0, got %g", arrivalRate)
	}
	if svc.Mean <= 0 || svc.Sample == nil {
		return TickResult{}, fmt.Errorf("queue: service distribution needs Mean > 0 and a Sample func")
	}

	c := float64(m.servers)
	capacity := c * dt / svc.Mean // requests servable this tick
	offered := arrivalRate * dt
	demand := offered + m.backlog
	completed := math.Min(demand, capacity)
	newBacklog := demand - completed
	// Client timeout: queue positions whose drain time exceeds maxDelay
	// are abandoned. They count as violations below.
	var dropped float64
	if m.maxDelay > 0 {
		maxBacklog := m.maxDelay * c / svc.Mean
		if newBacklog > maxBacklog {
			dropped = newBacklog - maxBacklog
			newBacklog = maxBacklog
		}
	}
	rho := arrivalRate * svc.Mean / c

	// Backlog-induced delay seen by an arrival: the time to drain the
	// queue ahead of it. Interpolated linearly across the tick from the
	// start backlog to the end backlog.
	d0 := m.backlog * svc.Mean / c
	dEnd := newBacklog * svc.Mean / c

	// Stationary waiting applies only in the stable regime.
	var pWait, condWaitMean float64
	if rho < 1 {
		pWait = erlangC(m.servers, rho)
		condWaitMean = svc.Mean * (1 + svc.CV2) / 2 / (c * (1 - rho))
	}

	var sum float64
	var violations int
	if cap(m.scratch) < mcDraws {
		m.scratch = make([]float64, mcDraws)
	}
	draws := m.scratch[:mcDraws]
	for i := range draws {
		tau := m.rng.Float64() // arrival position within the tick
		s := svc.Sample(m.rng)
		t := s + d0 + (dEnd-d0)*tau
		if rho < 1 && m.rng.Float64() < pWait {
			t += m.rng.ExpFloat64() * condWaitMean
		}
		draws[i] = t
		sum += t
		if slo > 0 && t > slo {
			violations++
		}
	}
	p50, p99 := m.Quantiles(draws)
	res := TickResult{
		Completed:   completed,
		Offered:     offered,
		P50:         p50,
		P99:         p99,
		Mean:        sum / mcDraws,
		Utilization: rho,
		Backlog:     newBacklog,
		Dropped:     dropped,
	}
	if slo > 0 {
		served := completed
		frac := float64(violations) / mcDraws
		if total := served + dropped; total > 0 {
			res.ViolationFrac = (frac*served + dropped) / total
		}
	}
	m.backlog = newBacklog
	m.ticks++
	m.draws += mcDraws
	return res, nil
}

// Quantiles extracts the P50 and P99 order statistics from one tick's
// sojourn draws, reordering the slice in place. This is the per-tick
// quantile kernel: quickselect by default, the original full sort under
// SetReferenceQuantiles. Both return identical values; it is exported so
// the perf baseline can measure the kernel apart from draw generation.
func (m *Model) Quantiles(draws []float64) (p50, p99 float64) {
	if m.refQuantiles {
		sortFloats(draws)
		return quantileSorted(draws, 0.50), quantileSorted(draws, 0.99)
	}
	return selectKth(draws, quantileIndex(len(draws), 0.50)),
		selectKth(draws, quantileIndex(len(draws), 0.99))
}

// StationaryP99 returns the analytic steady-state P99 sojourn time for the
// given arrival rate and service distribution, or +Inf when the queue is
// unstable. Used by tests and by offline profiling (it avoids Monte Carlo
// noise when searching for knee points).
func (m *Model) StationaryP99(arrivalRate float64, svc ServiceDist) float64 {
	c := float64(m.servers)
	rho := arrivalRate * svc.Mean / c
	if rho >= 1 {
		return math.Inf(1)
	}
	pWait := erlangC(m.servers, rho)
	condWaitMean := svc.Mean * (1 + svc.CV2) / 2 / (c * (1 - rho))
	// P(T > x) ~= P(S > x-ish) combined with waiting tail. With service
	// far smaller than the tail target, waiting dominates:
	// P(W > x) = pWait * exp(-x/condWaitMean)  =>  x such that P = 0.01.
	if pWait <= 0.01 {
		// Waiting almost never happens; P99 is essentially service.
		return svc.Mean * (1 + 2*math.Sqrt(svc.CV2))
	}
	w99 := condWaitMean * math.Log(pWait/0.01)
	if w99 < 0 {
		w99 = 0
	}
	return w99 + svc.Mean
}

// erlangC returns the Erlang-C probability that an arrival must wait in an
// M/M/c queue with c servers at utilization rho (per-server). Computed via
// the numerically stable iterative form of the Erlang-B recursion.
func erlangC(c int, rho float64) float64 {
	if rho >= 1 {
		return 1
	}
	if rho <= 0 {
		return 0
	}
	a := rho * float64(c) // offered load in Erlangs
	// Erlang-B recursion: B(0)=1; B(k) = a*B(k-1) / (k + a*B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	// Erlang-C from Erlang-B.
	return b / (1 - rho*(1-b))
}

// sortFloats is an insertion-free shell sort adequate for the fixed-size
// Monte Carlo buffers; it avoids pulling in sort.Float64s allocations on
// the hot path (sort.Float64s does not allocate, but the interface call
// per comparison is measurable at 2048 elements × every tick).
func sortFloats(a []float64) {
	gaps := [...]int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[quantileIndex(len(sorted), q)]
}

// quantileIndex returns the order-statistic index quantileSorted reads for
// quantile q over n elements.
func quantileIndex(n int, q float64) int {
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// selectKth partitions a in place until a[k] holds the k-th smallest
// element and returns it — the same value quantileSorted would read at
// index k after a full sort, without the O(n log n) sort. The
// median-of-three pivot keeps selection deterministic (no RNG use, so the
// Monte Carlo stream is untouched).
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[k]
}
