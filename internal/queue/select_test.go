package queue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectKthMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3000)
		a := make([]float64, n)
		for i := range a {
			if rng.Intn(8) == 0 { // duplicates stress the partition
				a[i] = float64(rng.Intn(4))
			} else {
				a[i] = rng.NormFloat64()
			}
		}
		sorted := append([]float64(nil), a...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
			k := quantileIndex(n, q)
			buf := append([]float64(nil), a...)
			if got, want := selectKth(buf, k), sorted[k]; got != want {
				t.Fatalf("trial %d n=%d q=%g: selectKth=%g, sorted[%d]=%g",
					trial, n, q, got, k, want)
			}
		}
	}
}

// TestTickQuantilesMatchReference runs identical tick sequences through the
// quickselect and full-sort quantile paths and asserts bit-identical
// TickResults.
func TestTickQuantilesMatchReference(t *testing.T) {
	fast, err := NewModel(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewModel(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetReferenceQuantiles(true)
	fast.SetClientTimeout(0.5)
	ref.SetClientTimeout(0.5)

	svc := ExponentialService(0.002)
	for tick := 0; tick < 300; tick++ {
		rate := 100 + float64(tick%50)*40 // sweeps through stable and overloaded
		fr, err := fast.Tick(rate, 0.1, svc, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ref.Tick(rate, 0.1, svc, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if fr != rr {
			t.Fatalf("tick %d: fast %+v != ref %+v", tick, fr, rr)
		}
	}
}

func BenchmarkTickQuantileRef(b *testing.B) {
	m, err := NewModel(8, 42)
	if err != nil {
		b.Fatal(err)
	}
	m.SetReferenceQuantiles(true)
	svc := ExponentialService(0.002)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tick(3000, 0.1, svc, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
