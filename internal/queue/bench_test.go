package queue

import "testing"

func BenchmarkTickStable(b *testing.B) {
	m, _ := NewModel(8, 1)
	svc := ExponentialService(10e-6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tick(600000, 0.1, svc, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickOverload(b *testing.B) {
	m, _ := NewModel(1, 1)
	m.SetClientTimeout(0.1)
	svc := DeterministicService(10e-6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tick(150000, 0.1, svc, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryP99(b *testing.B) {
	m, _ := NewModel(8, 1)
	svc := ExponentialService(10e-6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.StationaryP99(700000, svc)
	}
}
