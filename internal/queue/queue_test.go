package queue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 1); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := NewModel(-1, 1); err == nil {
		t.Error("negative servers accepted")
	}
	m, err := NewModel(4, 1)
	if err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if m.Servers() != 4 {
		t.Errorf("Servers() = %d, want 4", m.Servers())
	}
}

func TestTickValidation(t *testing.T) {
	m, _ := NewModel(1, 1)
	svc := DeterministicService(1e-5)
	if _, err := m.Tick(100, 0, svc, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := m.Tick(-1, 0.1, svc, 0); err == nil {
		t.Error("negative arrival rate accepted")
	}
	if _, err := m.Tick(100, 0.1, ServiceDist{}, 0); err == nil {
		t.Error("empty service dist accepted")
	}
}

func TestErlangC(t *testing.T) {
	// M/M/1: Erlang-C equals rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := erlangC(1, rho); math.Abs(got-rho) > 1e-9 {
			t.Errorf("erlangC(1, %g) = %g, want %g", rho, got, rho)
		}
	}
	// Known value: c=2, rho=0.75 (a=1.5): C ~= 0.6429.
	if got := erlangC(2, 0.75); math.Abs(got-0.642857) > 1e-4 {
		t.Errorf("erlangC(2, 0.75) = %g, want ~0.642857", got)
	}
	if got := erlangC(4, 0); got != 0 {
		t.Errorf("erlangC at rho=0 = %g, want 0", got)
	}
	if got := erlangC(4, 1); got != 1 {
		t.Errorf("erlangC at rho=1 = %g, want 1", got)
	}
	// More servers at equal rho wait less.
	if erlangC(8, 0.8) >= erlangC(2, 0.8) {
		t.Error("erlangC should decrease with server count at fixed rho")
	}
}

func TestTickLowLoadLatencyIsService(t *testing.T) {
	m, _ := NewModel(1, 42)
	svc := DeterministicService(10e-6)
	res, err := m.Tick(1000, 0.1, svc, 0) // rho = 0.01
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P50-10e-6)/10e-6 > 0.2 {
		t.Errorf("P50 at 1%% load = %g, want ~10µs", res.P50)
	}
	if res.Backlog != 0 {
		t.Errorf("backlog at low load = %g, want 0", res.Backlog)
	}
	if math.Abs(res.Completed-100) > 1e-6 {
		t.Errorf("Completed = %g, want 100", res.Completed)
	}
	if math.Abs(res.Utilization-0.01) > 1e-9 {
		t.Errorf("Utilization = %g, want 0.01", res.Utilization)
	}
}

func TestTickLatencyIncreasesWithLoad(t *testing.T) {
	svc := ExponentialService(10e-6)
	var prev float64
	for i, rate := range []float64{10000, 50000, 90000, 98000} {
		m, _ := NewModel(1, 7)
		// Average several ticks to smooth Monte Carlo noise.
		var sum float64
		const n = 20
		for j := 0; j < n; j++ {
			res, err := m.Tick(rate, 0.1, svc, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.P99
		}
		p99 := sum / n
		if i > 0 && p99 <= prev {
			t.Errorf("P99 at rate %g (%g) not above previous (%g)", rate, p99, prev)
		}
		prev = p99
	}
}

func TestTickOverloadBacklogGrows(t *testing.T) {
	m, _ := NewModel(1, 3)
	svc := DeterministicService(10e-6) // capacity 100k/s
	var lastP99 float64
	for i := 0; i < 10; i++ {
		res, err := m.Tick(150000, 0.1, svc, 0) // 1.5x overload
		if err != nil {
			t.Fatal(err)
		}
		// Backlog grows by ~5000 requests per tick.
		wantB := 5000 * float64(i+1)
		if math.Abs(res.Backlog-wantB)/wantB > 0.01 {
			t.Fatalf("tick %d backlog = %g, want ~%g", i, res.Backlog, wantB)
		}
		if res.P99 < lastP99 {
			t.Errorf("P99 decreased under sustained overload: %g -> %g", lastP99, res.P99)
		}
		lastP99 = res.P99
		if res.Completed > 10000+1e-6 {
			t.Errorf("completed %g exceeds capacity 10000", res.Completed)
		}
	}
	// After 1s of 1.5x overload the queue holds ~50k requests -> latency
	// near 0.5s, a clear SLO explosion.
	if lastP99 < 0.1 {
		t.Errorf("P99 after sustained overload = %g, want > 0.1s", lastP99)
	}
}

func TestBacklogDrainsAfterLoadDrop(t *testing.T) {
	m, _ := NewModel(1, 3)
	svc := DeterministicService(10e-6)
	for i := 0; i < 5; i++ {
		if _, err := m.Tick(150000, 0.1, svc, 0); err != nil {
			t.Fatal(err)
		}
	}
	if m.Backlog() == 0 {
		t.Fatal("expected backlog after overload")
	}
	// Drop to half load: drain.
	var res TickResult
	var err error
	for i := 0; i < 10; i++ {
		res, err = m.Tick(50000, 0.1, svc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Backlog == 0 {
			break
		}
	}
	if res.Backlog != 0 {
		t.Errorf("backlog did not drain: %g", res.Backlog)
	}
}

func TestResetBacklog(t *testing.T) {
	m, _ := NewModel(1, 3)
	svc := DeterministicService(10e-6)
	if _, err := m.Tick(150000, 0.1, svc, 0); err != nil {
		t.Fatal(err)
	}
	if m.Backlog() == 0 {
		t.Fatal("expected backlog")
	}
	m.ResetBacklog()
	if m.Backlog() != 0 {
		t.Error("ResetBacklog did not clear backlog")
	}
}

func TestViolationFrac(t *testing.T) {
	m, _ := NewModel(1, 11)
	svc := DeterministicService(10e-6)
	// Low load, generous SLO: no violations.
	res, err := m.Tick(1000, 0.1, svc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationFrac != 0 {
		t.Errorf("violations at low load = %g, want 0", res.ViolationFrac)
	}
	// Overload for a second, then nearly all requests violate.
	for i := 0; i < 10; i++ {
		res, err = m.Tick(200000, 0.1, svc, 0.02)
		if err != nil {
			t.Fatal(err)
		}
	}
	if res.ViolationFrac < 0.95 {
		t.Errorf("violations under overload = %g, want ~1", res.ViolationFrac)
	}
	// slo=0 disables violation accounting.
	res, err = m.Tick(1000, 0.1, svc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationFrac != 0 {
		t.Errorf("ViolationFrac with slo=0 = %g, want 0", res.ViolationFrac)
	}
}

func TestStationaryP99(t *testing.T) {
	m, _ := NewModel(1, 1)
	svc := ExponentialService(10e-6)
	// Unstable -> infinite.
	if got := m.StationaryP99(200000, svc); !math.IsInf(got, 1) {
		t.Errorf("StationaryP99 at 2x overload = %g, want +Inf", got)
	}
	// Very low load: close to service time scale.
	low := m.StationaryP99(1000, svc)
	if low > 100e-6 {
		t.Errorf("StationaryP99 at 1%% load = %g, want < 100µs", low)
	}
	// Monotone in arrival rate.
	prev := 0.0
	for _, rate := range []float64{10000, 50000, 90000, 99000} {
		got := m.StationaryP99(rate, svc)
		if got < prev {
			t.Errorf("StationaryP99 not monotone at rate %g: %g < %g", rate, got, prev)
		}
		prev = got
	}
	// The knee: near saturation P99 explodes past 100x the service time.
	if knee := m.StationaryP99(99900, svc); knee < 100*svc.Mean {
		t.Errorf("StationaryP99 near saturation = %g, want > %g", knee, 100*svc.Mean)
	}
}

func TestStationaryP99MoreServersSustainMoreLoad(t *testing.T) {
	svc := ExponentialService(50e-6)
	m1, _ := NewModel(1, 1)
	m8, _ := NewModel(8, 1)
	rate := 100000.0 // 5x one server's capacity, 62% of eight servers'
	if got := m1.StationaryP99(rate, svc); !math.IsInf(got, 1) {
		t.Errorf("1 server at 5x load should be unstable, got %g", got)
	}
	if got := m8.StationaryP99(rate, svc); math.IsInf(got, 1) || got > 0.01 {
		t.Errorf("8 servers at 62%% load should be fast, got %g", got)
	}
}

func TestServiceDistHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	det := DeterministicService(5e-6)
	if det.Mean != 5e-6 || det.CV2 != 0 || det.Sample(rng) != 5e-6 {
		t.Error("DeterministicService wrong")
	}
	exp := ExponentialService(5e-6)
	if exp.Mean != 5e-6 || exp.CV2 != 1 {
		t.Error("ExponentialService moments wrong")
	}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += exp.Sample(rng)
	}
	if got := sum / n; math.Abs(got-5e-6)/5e-6 > 0.02 {
		t.Errorf("ExponentialService empirical mean = %g, want 5µs", got)
	}
}

func TestSortFloats(t *testing.T) {
	f := func(a []float64) bool {
		b := make([]float64, len(a))
		copy(b, a)
		sortFloats(b)
		c := make([]float64, len(a))
		copy(c, a)
		sort.Float64s(c)
		for i := range b {
			if b[i] != c[i] && !(math.IsNaN(b[i]) && math.IsNaN(c[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantileSorted(t *testing.T) {
	if got := quantileSorted(nil, 0.5); got != 0 {
		t.Errorf("quantileSorted(nil) = %g, want 0", got)
	}
	s := []float64{1, 2, 3, 4}
	cases := []struct {
		q, want float64
	}{{0, 1}, {0.25, 1}, {0.5, 2}, {0.99, 4}, {1, 4}}
	for _, tc := range cases {
		if got := quantileSorted(s, tc.q); got != tc.want {
			t.Errorf("quantileSorted(q=%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestTickDeterminism(t *testing.T) {
	run := func() []float64 {
		m, _ := NewModel(2, 99)
		svc := ExponentialService(20e-6)
		out := make([]float64, 0, 10)
		for i := 0; i < 10; i++ {
			res, err := m.Tick(60000, 0.1, svc, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.P99)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d differs across identical seeded runs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestClientTimeoutBoundsBacklog(t *testing.T) {
	m, _ := NewModel(1, 17)
	m.SetClientTimeout(0.05) // 50 ms of queueing at most
	svc := DeterministicService(10e-6)
	var res TickResult
	var err error
	var totalDropped float64
	for i := 0; i < 30; i++ {
		res, err = m.Tick(200000, 0.1, svc, 0.02) // 2x overload
		if err != nil {
			t.Fatal(err)
		}
		totalDropped += res.Dropped
	}
	// Backlog is capped at maxDelay * capacity = 0.05 * 100000 = 5000.
	if res.Backlog > 5000+1 {
		t.Errorf("backlog %g exceeds timeout bound 5000", res.Backlog)
	}
	if totalDropped == 0 {
		t.Error("sustained overload dropped nothing")
	}
	// Dropped requests count as violations: with 2x overload roughly half
	// of all requests must fail.
	if res.ViolationFrac < 0.45 {
		t.Errorf("ViolationFrac = %g, want >= 0.45 under 2x overload", res.ViolationFrac)
	}
	// Latency stays bounded near the timeout rather than diverging.
	if res.P99 > 0.2 {
		t.Errorf("P99 = %g, want bounded near the 50 ms timeout", res.P99)
	}
}

func TestClientTimeoutDisabled(t *testing.T) {
	m, _ := NewModel(1, 18)
	m.SetClientTimeout(0) // disabled
	svc := DeterministicService(10e-6)
	var res TickResult
	for i := 0; i < 10; i++ {
		res, _ = m.Tick(200000, 0.1, svc, 0)
	}
	if res.Dropped != 0 {
		t.Errorf("drops with timeout disabled: %g", res.Dropped)
	}
	// Unbounded backlog keeps growing: 10k excess per tick x 10 ticks.
	if res.Backlog < 90000 {
		t.Errorf("backlog = %g, want ~100000 without timeout", res.Backlog)
	}
}
