module github.com/tieredmem/mtat

go 1.22
